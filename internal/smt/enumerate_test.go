package smt

import (
	"testing"

	"repro/internal/logic"
)

func TestEnumerateModelsExhaustive(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 4)
	mustAssert(t, s, logic.Ne(n, logic.NewInt(2)))
	seen := map[int64]bool{}
	count, exhausted, err := s.EnumerateModels([]*logic.Var{n}, 100, func(m logic.Assignment) bool {
		seen[m["n"].I] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted || count != 4 {
		t.Fatalf("count=%d exhausted=%v, want 4/true", count, exhausted)
	}
	if seen[2] || len(seen) != 4 {
		t.Fatalf("models = %v", seen)
	}
}

func TestEnumerateModelsBudget(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 9)
	count, exhausted, err := s.EnumerateModels([]*logic.Var{n}, 3, func(logic.Assignment) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if exhausted || count != 3 {
		t.Fatalf("count=%d exhausted=%v, want 3/false", count, exhausted)
	}
}

func TestEnumerateModelsEarlyStop(t *testing.T) {
	s := NewSolver()
	b := logic.NewBoolVar("b")
	s.Declare(b)
	count, exhausted, err := s.EnumerateModels([]*logic.Var{b}, 10, func(logic.Assignment) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if exhausted || count != 1 {
		t.Fatalf("count=%d exhausted=%v, want 1/false", count, exhausted)
	}
}

func TestEnumerateModelsProjection(t *testing.T) {
	// Two variables, projecting onto one: models of the projection,
	// not of the full space.
	s := NewSolver()
	a := logic.NewBoolVar("a")
	b := logic.NewBoolVar("b")
	s.Declare(a)
	s.Declare(b)
	count, exhausted, err := s.CountModels([]*logic.Var{a}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted || count != 2 {
		t.Fatalf("projected count = %d (exhausted=%v), want 2", count, exhausted)
	}
}

func TestEnumerateModelsNoVars(t *testing.T) {
	s := NewSolver()
	if _, _, err := s.EnumerateModels(nil, 10, func(logic.Assignment) bool { return true }); err == nil {
		t.Fatal("empty projection should fail")
	}
}

func TestCountModelsEnumCross(t *testing.T) {
	s := NewSolver()
	c1 := logic.NewEnumVar("c1", colorSort)
	c2 := logic.NewEnumVar("c2", colorSort)
	mustAssert(t, s, logic.Ne(c1, c2))
	count, exhausted, err := s.CountModels([]*logic.Var{c1, c2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted || count != 6 { // 3*2 ordered distinct pairs
		t.Fatalf("count = %d (exhausted=%v), want 6", count, exhausted)
	}
}
