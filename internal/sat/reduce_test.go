package sat

import (
	"fmt"
	"sort"
	"testing"
)

// litsKey renders a clause's literals as an order-insensitive map key so
// trace operations can be matched against clauses by content.
func litsKey(lits []Lit) string {
	ints := make([]int, len(lits))
	for i, l := range lits {
		ints[i] = int(l)
	}
	sort.Ints(ints)
	return fmt.Sprint(ints)
}

// checkPropIndexConsistency verifies the propagation indexes against
// the clause database: binaries appear on both binary implication
// lists (carrying the correct implied literal), ternaries on all
// three ternary watch lists (carrying the correct other literals),
// longer clauses on the watch lists of lits[0] and lits[1] — and no
// index entry references a clause outside the database (i.e. a
// detached clause never lingers).
func checkPropIndexConsistency(t *testing.T, s *Solver) {
	t.Helper()
	live := make(map[*clause]bool, len(s.clauses)+len(s.learnts))
	for _, c := range s.clauses {
		live[c] = true
	}
	for _, c := range s.learnts {
		if live[c] {
			t.Fatalf("clause %v present twice in the database", c.lits)
		}
		live[c] = true
	}
	count := make(map[*clause]int, len(live))
	for w := Lit(0); int(w) < len(s.watches); w++ {
		for _, wt := range s.watches[w] {
			c := wt.c
			if !live[c] {
				t.Fatalf("watch list of %d references a detached clause %v", w, c.lits)
			}
			if len(c.lits) <= 3 {
				t.Fatalf("short clause %v indexed on the long-clause watch lists", c.lits)
			}
			if c.lits[0].Neg() != w && c.lits[1].Neg() != w {
				t.Fatalf("clause %v watched on %d, which negates neither lits[0] nor lits[1]", c.lits, w)
			}
			count[c]++
		}
		for _, bw := range s.bins[w] {
			c := bw.c
			if !live[c] {
				t.Fatalf("binary list of %d references a detached clause %v", w, c.lits)
			}
			if len(c.lits) != 2 {
				t.Fatalf("clause %v of length %d indexed on the binary implication lists", c.lits, len(c.lits))
			}
			var other Lit
			switch w {
			case c.lits[0].Neg():
				other = c.lits[1]
			case c.lits[1].Neg():
				other = c.lits[0]
			default:
				t.Fatalf("binary clause %v on list of %d, which negates neither literal", c.lits, w)
			}
			if bw.other != other {
				t.Fatalf("binary clause %v on list of %d carries implied literal %d, want %d", c.lits, w, bw.other, other)
			}
			count[c]++
		}
		for _, tw := range s.terns[w] {
			c := tw.c
			if !live[c] {
				t.Fatalf("ternary list of %d references a detached clause %v", w, c.lits)
			}
			if len(c.lits) != 3 {
				t.Fatalf("clause %v of length %d indexed on the ternary watch lists", c.lits, len(c.lits))
			}
			others := map[Lit]bool{}
			found := false
			for _, l := range c.lits {
				if l.Neg() == w && !found {
					found = true
					continue
				}
				others[l] = true
			}
			if !found {
				t.Fatalf("ternary clause %v on list of %d, which negates none of its literals", c.lits, w)
			}
			if !others[tw.o1] || !others[tw.o2] || tw.o1 == tw.o2 {
				t.Fatalf("ternary clause %v on list of %d carries other literals %d,%d, want %v", c.lits, w, tw.o1, tw.o2, others)
			}
			count[c]++
		}
	}
	for c := range live {
		if len(c.lits) < 2 {
			t.Fatalf("stored clause %v has fewer than two literals", c.lits)
		}
		want := 2
		if len(c.lits) == 3 {
			want = 3
		}
		if count[c] != want {
			t.Fatalf("clause %v has %d propagation-index entries, want %d", c.lits, count[c], want)
		}
	}
}

// traceDeleteKeys collects the ProofDelete operations of a trace as
// order-insensitive clause keys.
func traceDeleteKeys(tr *Trace) map[string]int {
	keys := make(map[string]int)
	for _, op := range tr.Snapshot() {
		if op.Kind == ProofDelete {
			keys[litsKey(op.Lits)]++
		}
	}
	return keys
}

// TestReduceDBInvariants drives reduceDB over a hand-built learnt
// database and checks the retention rules one by one: locked (reason)
// clauses, glue clauses, binary learnts, and protected mid-tier clauses
// survive; everything deleted is detached from the propagation indexes
// and logged with exactly one ProofDelete; and once its protection is
// spent or its lock released, a clause becomes deletable.
func TestReduceDBInvariants(t *testing.T) {
	s := NewSolver()
	tr := NewTrace()
	if err := s.SetProof(tr); err != nil {
		t.Fatal(err)
	}
	vars := newVars(s, 120)
	lit := func(i int) Lit { return MkLit(vars[i], true) }

	// Problem clauses: reduceDB must never touch these.
	s.AddClause(lit(0), lit(1), lit(2))
	s.AddClause(lit(3), lit(4))

	addLearnt := func(lbd int32, act float64, protect bool, lits ...Lit) *clause {
		c := &clause{lits: lits, learnt: true, activity: act, lbd: lbd, protect: protect}
		s.attach(c)
		s.learnts = append(s.learnts, c)
		return c
	}
	// junk manufactures deletable clauses: unprotected mid-glue, zero
	// activity, over fresh variables. Their glue (5) is deliberately
	// *better* than the locked and protected clauses below, so the
	// worst-first scan reaches those clauses before the deletion target
	// is met — otherwise their retention rules would never be exercised.
	next := 20
	junk := func(n int) []*clause {
		out := make([]*clause, n)
		for i := range out {
			out[i] = addLearnt(5, 0, false, lit(next), lit(next+1), lit(next+2))
			next += 3
		}
		return out
	}

	glue := addLearnt(coreLBD, 0, false, lit(5), lit(6), lit(7))
	binLearnt := addLearnt(9, 0, false, lit(8), lit(9))
	protectedMid := addLearnt(midLBD, 0, true, lit(10), lit(11), lit(12))
	locked := addLearnt(12, 0, false, lit(13), lit(14), lit(15))
	junk1 := junk(8)

	// Make locked the reason of a current assignment: open a decision
	// level and enqueue its first literal from it, exactly as propagate
	// would.
	s.trailLim = append(s.trailLim, len(s.trail))
	s.uncheckedEnqueue(locked.lits[0], locked)
	if !s.locked(locked) {
		t.Fatal("setup: reason clause not reported locked")
	}

	inDB := func(c *clause) bool {
		for _, l := range s.learnts {
			if l == c {
				return true
			}
		}
		return false
	}

	s.reduceDB()
	for _, c := range []*clause{glue, binLearnt, protectedMid, locked} {
		if !inDB(c) {
			t.Fatalf("protected clause %v deleted by reduceDB", c.lits)
		}
	}
	if protectedMid.protect {
		t.Fatal("mid-tier clause survived reduction without spending its protection")
	}
	removed1 := 0
	for _, c := range junk1 {
		if !inDB(c) {
			removed1++
		}
	}
	if removed1 == 0 {
		t.Fatal("reduceDB removed no junk clauses; the test exercises nothing")
	}
	if got, want := int(s.Stats.RemovedClauses), removed1; got != want {
		t.Fatalf("Stats.RemovedClauses = %d, want %d", got, want)
	}
	if got, want := tr.Deletes(), removed1; got != want {
		t.Fatalf("trace records %d deletions, want %d", got, want)
	}
	checkPropIndexConsistency(t, s)

	// Every ProofDelete must name a clause that actually left the
	// database, exactly once.
	gone := make(map[string]int)
	for _, c := range junk1 {
		if !inDB(c) {
			gone[litsKey(c.lits)]++
		}
	}
	if dels := traceDeleteKeys(tr); fmt.Sprint(dels) != fmt.Sprint(gone) {
		t.Fatalf("ProofDelete operations %v do not match removed clauses %v", dels, gone)
	}

	// Second reduction: protection spent, the mid-tier clause is now
	// deletable; the lock still holds.
	junk(8)
	s.reduceDB()
	if inDB(protectedMid) {
		t.Fatal("mid-tier clause survived a second reduction after spending its protection")
	}
	if !inDB(locked) {
		t.Fatal("locked clause deleted while still a reason")
	}
	checkPropIndexConsistency(t, s)

	// Release the lock by backtracking; the clause loses its immunity.
	s.cancelUntil(0)
	if s.locked(locked) {
		t.Fatal("clause still locked after backtracking")
	}
	junk(8)
	s.reduceDB()
	if inDB(locked) {
		t.Fatal("unlocked high-glue clause survived reduction")
	}
	if got, want := tr.Deletes(), int(s.Stats.RemovedClauses); got != want {
		t.Fatalf("trace records %d deletions, stats say %d", got, want)
	}
	checkPropIndexConsistency(t, s)
}

// TestReduceDBDuringSearch runs real searches big enough to trigger
// clause-database reductions and checks the global invariants hold
// afterwards: reason clauses of the final trail are all in the
// database, the propagation indexes are consistent, ProofDelete count
// matches the removal counter, and on Unsat the full trace — deletions
// included — passes the independent checker.
func TestReduceDBDuringSearch(t *testing.T) {
	t.Run("sat", func(t *testing.T) {
		s := NewSolver()
		tr := NewTrace()
		if err := s.SetProof(tr); err != nil {
			t.Fatal(err)
		}
		addRandom3SAT(s, 200, 800, 3)
		if st := s.Solve(); st != Sat {
			t.Fatalf("Solve = %v, want Sat", st)
		}
		if s.Stats.Reductions == 0 {
			t.Fatal("search completed without a reduction; enlarge the instance")
		}
		if got, want := tr.Deletes(), int(s.Stats.RemovedClauses+s.Stats.InprocessDeleted); got != want {
			t.Fatalf("trace records %d deletions, stats say %d", got, want)
		}
		checkPropIndexConsistency(t, s)
	})
	t.Run("unsat-proof", func(t *testing.T) {
		s := NewSolver()
		tr := NewTrace()
		if err := s.SetProof(tr); err != nil {
			t.Fatal(err)
		}
		addRandom3SAT(s, 140, 600, 5)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("Solve = %v, want Unsat", st)
		}
		if s.Stats.Reductions == 0 {
			t.Fatal("search completed without a reduction; enlarge the instance")
		}
		if got, want := tr.Deletes(), int(s.Stats.RemovedClauses+s.Stats.InprocessDeleted); got != want {
			t.Fatalf("trace records %d deletions, stats say %d", got, want)
		}
		checkPropIndexConsistency(t, s)
		c := mustCheckTrace(t, tr)
		if !c.RootConflict() {
			t.Fatal("proof with deletions checked but no root conflict reached")
		}
	})
}

// TestReduceDBKeepsReasonsOfTrail checks mid-search state directly:
// after a bounded search is interrupted, every reason clause on the
// trail is still present in the clause database.
func TestReduceDBKeepsReasonsOfTrail(t *testing.T) {
	s := NewSolver()
	addRandom3SAT(s, 200, 800, 10)
	s.ConflictBudget = 4000
	if st := s.Solve(); st == Unsat {
		t.Fatalf("Solve = %v, want Sat or Unknown", st)
	}
	if s.Stats.Reductions == 0 {
		t.Fatal("search completed without a reduction; enlarge the budget")
	}
	live := make(map[*clause]bool, len(s.clauses)+len(s.learnts))
	for _, c := range s.clauses {
		live[c] = true
	}
	for _, c := range s.learnts {
		live[c] = true
	}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil && !live[r] {
			t.Fatalf("trail literal %d has a detached reason clause %v", l, r.lits)
		}
	}
	checkPropIndexConsistency(t, s)
}
