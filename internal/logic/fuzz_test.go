package logic

import "testing"

// FuzzParse checks the term parser never panics over a fixed
// vocabulary, and that accepted terms print/parse stably.
func FuzzParse(f *testing.F) {
	f.Add("x & (y | !x)")
	f.Add("n + 1 <= 7 => act != deny")
	f.Add("ite(x, 1, 0) = n")
	f.Add("x <=> y <=> x")
	f.Add("!!!x")
	f.Add("((((")
	f.Add("- - 3 < n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 256 {
			return
		}
		sort := NewEnumSort("FAct", "permit", "deny")
		p, err := NewParser([]*Var{
			NewBoolVar("x"), NewBoolVar("y"),
			NewIntVar("n", 0, 100), NewEnumVar("act", sort),
		}, []*Sort{sort})
		if err != nil {
			t.Fatal(err)
		}
		term, err := p.Parse(src)
		if err != nil {
			return
		}
		printed := term.String()
		term2, err := p.Parse(printed)
		if err != nil {
			t.Fatalf("printed term does not reparse: %v\n%s", err, printed)
		}
		if term2.String() != printed {
			t.Fatalf("print not stable: %q -> %q", printed, term2.String())
		}
	})
}
