package core

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/verify"
)

// TestExplainHandWrittenDeployment exercises the generalization the
// paper's Section 5 proposes ("explainable network verification"): the
// explainer needs no synthesizer — any concrete deployment that
// satisfies a specification can be explained, revealing WHY it does.
func TestExplainHandWrittenDeployment(t *testing.T) {
	net := topology.Paper()
	reqs := mustReqs(t, `Req1 { !(P1->...->P2) !(P2->...->P1) }`)

	// A hand-written R1 config an operator might deploy: block the
	// provider prefixes explicitly toward P1, allow the rest.
	r1 := config.New("R1")
	r1.AddPrefixList(&config.PrefixList{Name: "providers", Entries: []config.PrefixEntry{
		{Seq: 10, Action: config.Permit, Prefix: topology.MustPrefix("128.0.2.0/24")},
	}})
	r1.AddRouteMap(&config.RouteMap{Name: "out_p1", Clauses: []*config.Clause{
		{Seq: 10, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchPrefixList, PrefixList: "providers"}}},
		{Seq: 20, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R2"}}},
		{Seq: 30, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R3"}}},
		{Seq: 100, Action: config.Permit},
	}})
	r1.AddNeighbor("P1", "", "out_p1")

	r2 := config.New("R2")
	r2.AddRouteMap(&config.RouteMap{Name: "out_p2", Clauses: []*config.Clause{
		{Seq: 10, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R1"}}},
		{Seq: 20, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R3"}}},
		{Seq: 100, Action: config.Permit},
	}})
	r2.AddNeighbor("P2", "", "out_p2")

	dep := config.Deployment{"R1": r1, "R2": r2}
	ok, err := verify.Satisfies(net, dep, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		vs, _ := verify.Check(net, dep, reqs)
		t.Fatalf("hand-written deployment should satisfy the spec: %v", vs)
	}

	// Explain it — no synthesis anywhere in this test.
	e, err := NewExplainer(net, reqs, dep, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec == nil || ex.Subspec.IsEmpty() {
		t.Fatal("hand-written R1 must have a non-empty subspec for no-transit")
	}
	joined := strings.Join(subspecStrings(ex.Subspec), "\n")
	if !strings.Contains(joined, "P2->R2->R1->P1") {
		t.Fatalf("subspec misses the transit block:\n%s", joined)
	}
	// And the config validates against its own subspec.
	good, err := e.SatisfiesSubspec("R1", ex.Subspec)
	if err != nil || !good {
		t.Fatalf("hand-written config fails its own subspec: %v", err)
	}
}

// TestReport exercises the whole-deployment report.
func TestReport(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, sc.Spec.Block("Req1").Reqs)
	report, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXPLANATION REPORT",
		"--- R1 ---",
		"--- R2 ---",
		"--- R3 ---",
		"R3 { }",
		"!(P1->R1->R2->P2)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report misses %q", want)
		}
	}
}

func mustReqs(t *testing.T, src string) []spec.Requirement {
	t.Helper()
	s, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s.Requirements()
}
