package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunUsageErrors pins the shared cmd convention: bad flags and
// stray positional arguments are usage errors (exit 2) and are
// rejected before any socket is opened.
func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"stray-arg"},
		{"-maxinflight", "0"},
		{"-poolsize", "-3"},
		{"-timeout", "-1s"},
		{"-maxsatworkers", "0"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v): exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
		if out.Len() != 0 {
			t.Errorf("run(%v): usage error wrote to stdout: %q", args, out.String())
		}
	}
}

// TestRunListenFailure maps an unbindable address onto an operational
// failure (exit 1).
func TestRunListenFailure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-addr", "256.0.0.1:0"}, &out, &errOut); code != 1 {
		t.Fatalf("bad addr: exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "netexplaind:") {
		t.Fatalf("stderr missing error: %q", errOut.String())
	}
}

// TestRunServesUntilClosed starts the daemon on an ephemeral port,
// checks /healthz and /metrics over real HTTP, and verifies a clean
// shutdown exits 0.
func TestRunServesUntilClosed(t *testing.T) {
	hookErr := make(chan error, 1)
	testOnListen = func(addr string, srv *http.Server) {
		defer srv.Close()
		hookErr <- func() error {
			client := &http.Client{Timeout: 10 * time.Second}
			resp, err := client.Get("http://" + addr + "/healthz")
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
				return fmt.Errorf("healthz: status %d body %q", resp.StatusCode, body)
			}
			resp, err = client.Get("http://" + addr + "/metrics")
			if err != nil {
				return err
			}
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("metrics: status %d body %q", resp.StatusCode, body)
			}
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				return fmt.Errorf("metrics not JSON: %v", err)
			}
			return nil
		}()
	}
	defer func() { testOnListen = nil }()

	var out, errOut strings.Builder
	if code := run([]string{"-addr", "127.0.0.1:0"}, &out, &errOut); code != 0 {
		t.Fatalf("run: exit %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if err := <-hookErr; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Fatalf("stdout missing listen line: %q", out.String())
	}
}
