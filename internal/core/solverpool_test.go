package core

import (
	"context"
	"testing"

	"repro/internal/scenarios"
	"repro/internal/smt"
)

// TestPooledSolverStatsAcrossCancel drives the full pooled-solver
// lifecycle — checkout cold, solve, checkin, checkout warm, cancelled
// solve, checkin — and pins the session's harvested counters: every
// solve is counted exactly once (the warm checkout harvests a delta,
// not the solver's lifetime totals) and a cancelled query neither
// loses its attempt nor wraps any counter.
func TestPooledSolverStatsAcrossCancel(t *testing.T) {
	sc := scenarios.All()[0]
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	before := e.Stats()

	build := func(*smt.Solver) error { return nil }
	sv, release, err := e.checkoutSolver("pool-test", build)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sv.SolveContext(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	release()

	mid := e.Stats()
	if got := mid.Solves - before.Solves; got != 3 {
		t.Fatalf("after cold checkout: harvested %d solves, want 3", got)
	}

	sv2, release2, err := e.checkoutSolver("pool-test", build)
	if err != nil {
		t.Fatal(err)
	}
	if sv2 != sv {
		t.Fatalf("second checkout did not reuse the pooled solver")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv2.SolveContext(ctx); err == nil {
		t.Fatalf("cancelled solve did not report an error")
	}
	release2()

	after := e.Stats()
	delta := after.Solves - mid.Solves
	if delta > 1 {
		t.Fatalf("warm checkout re-harvested old work: delta %d solves, want at most 1", delta)
	}
	// The big failure mode this test exists for: a wrapped unsigned
	// subtraction would push the totals into the billions.
	if after.Solves-before.Solves > 100 {
		t.Fatalf("solve counter wrapped: %d", after.Solves-before.Solves)
	}
	if after.WarmSolverHits-before.WarmSolverHits != 1 || after.WarmSolverMisses-before.WarmSolverMisses != 1 {
		t.Fatalf("pool accounting off: hits %d misses %d",
			after.WarmSolverHits-before.WarmSolverHits, after.WarmSolverMisses-before.WarmSolverMisses)
	}
}
