package logic

// Equal reports structural equality of two terms. Variables compare by
// name, sort, and integer domain; literals by value; applications by
// operator and argument-wise equality. And/Or argument order is
// significant — the rewrite engine canonicalizes ordering where it
// matters.
//
// Terms built by this package's constructors are hash-consed (see
// intern.go), so Equal almost always decides in O(1): pointer-equal
// means equal, and two distinct canonical pointers of the same
// interner mean unequal. The structural walk only runs for hand-built
// or cross-interner nodes, and even then recursion hits the pointer
// fast path at the first shared child.
func Equal(a, b Term) bool {
	if a == b {
		return true
	}
	if ia := owner(a); ia != nil && ia == owner(b) {
		// Both canonical in the same interner: structurally equal terms
		// are pointer-identical, so distinct pointers are unequal.
		return false
	}
	if ha, hb := cachedHash(a), cachedHash(b); ha != 0 && hb != 0 && ha != hb {
		return false
	}
	switch x := a.(type) {
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name && x.Lo == y.Lo && x.Hi == y.Hi && SameSort(x.S, y.S)
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.Val == y.Val
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.Val == y.Val
	case *EnumLit:
		y, ok := b.(*EnumLit)
		return ok && x.Val == y.Val && SameSort(x.S, y.S)
	case *Apply:
		y, ok := b.(*Apply)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Hash returns a structural hash consistent with Equal: equal terms
// hash equally. Interned terms (anything built by the constructors)
// carry their hash from intern time, so Hash is O(1) on them; unowned
// hand-built nodes are hashed by traversal, reusing cached child
// hashes where present. Hash never returns 0.
func Hash(t Term) uint64 {
	if h := cachedHash(t); h != 0 {
		return h
	}
	return computeHash(t)
}

// cachedHash returns the hash stored at intern time, or 0 when the
// node has none.
func cachedHash(t Term) uint64 {
	switch n := t.(type) {
	case *Var:
		return n.hash
	case *BoolLit:
		return n.hash
	case *IntLit:
		return n.hash
	case *EnumLit:
		return n.hash
	case *Apply:
		return n.hash
	}
	return 0
}

func computeHash(t Term) uint64 {
	switch n := t.(type) {
	case *Var:
		return hashVar(n)
	case *BoolLit:
		return hashBool(n.Val)
	case *IntLit:
		return hashInt(n.Val)
	case *EnumLit:
		return hashEnum(n)
	case *Apply:
		return hashApply(n)
	}
	return 1
}

// The node hashes below are FNV-1a over a tagged flattening of the
// node, except that Apply mixes in its arguments' (cached) hashes as
// single words instead of re-walking the subterm — this is what makes
// interning O(1) per construction.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mixByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func mixWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = mixByte(h, byte(w>>(8*i)))
	}
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = mixByte(h, s[i])
	}
	return h
}

func mixSort(h uint64, s *Sort) uint64 {
	h = mixByte(h, byte(s.Kind))
	if s.Kind == KindEnum {
		h = mixString(h, s.Name)
	}
	return h
}

// nonzero keeps 0 available as the "no cached hash" sentinel.
func nonzero(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

func hashVar(v *Var) uint64 {
	h := mixByte(fnvOffset, 1)
	h = mixString(h, v.Name)
	h = mixSort(h, v.S)
	h = mixWord(h, uint64(v.Lo))
	h = mixWord(h, uint64(v.Hi))
	return nonzero(h)
}

func hashBool(v bool) uint64 {
	h := mixByte(fnvOffset, 2)
	if v {
		h = mixByte(h, 1)
	} else {
		h = mixByte(h, 0)
	}
	return nonzero(h)
}

func hashInt(v int64) uint64 {
	return nonzero(mixWord(mixByte(fnvOffset, 3), uint64(v)))
}

func hashEnum(e *EnumLit) uint64 {
	h := mixByte(fnvOffset, 4)
	h = mixString(h, e.Val)
	h = mixSort(h, e.S)
	return nonzero(h)
}

func hashApply(a *Apply) uint64 {
	h := mixByte(fnvOffset, 5)
	h = mixByte(h, byte(a.Op))
	h = mixWord(h, uint64(len(a.Args)))
	for _, arg := range a.Args {
		h = mixWord(h, Hash(arg))
	}
	return nonzero(h)
}

// DedupTerms removes structural duplicates from ts, preserving first
// occurrences. With interned inputs duplicates are pointer duplicates,
// so the common case is one map probe per term.
func DedupTerms(ts []Term) []Term {
	seen := make(map[uint64][]Term, len(ts))
	out := ts[:0:0]
	for _, t := range ts {
		h := Hash(t)
		dup := false
		for _, prev := range seen[h] {
			if Equal(prev, t) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], t)
			out = append(out, t)
		}
	}
	return out
}
