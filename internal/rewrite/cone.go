package rewrite

import "repro/internal/logic"

// Cone computes the cone of influence of an edit inside a constraint
// conjunction: the conjuncts transitively connected, through shared
// free variables, to the variables named by editSig (a Bloom signature
// built with logic.Signature over the edited terms).
//
// The closure mirrors how normalization spreads information: rules
// like eq-propagation carry a fact from one conjunct into every
// conjunct sharing its variables, which can in turn expose new facts,
// so an edit's reach is the fixpoint of "shares a variable with an
// already-reached conjunct". Signatures are Bloom filters, so the
// result over-approximates (two variable names may share a bit) but
// never under-approximates: a conjunct outside the returned cone
// provably shares no variable with the edit.
//
// The returned slice preserves the conjunct order of the input. A zero
// editSig (the edit touches no variables, e.g. a pure-constant change)
// yields an empty cone.
func Cone(conjuncts []logic.Term, editSig uint64) []logic.Term {
	if editSig == 0 || len(conjuncts) == 0 {
		return nil
	}
	sigs := make([]uint64, len(conjuncts))
	for i, c := range conjuncts {
		sigs[i] = logic.Signature(c)
	}
	in := make([]bool, len(conjuncts))
	reach := editSig
	for changed := true; changed; {
		changed = false
		for i, s := range sigs {
			if in[i] || s&reach == 0 || s == 0 {
				continue
			}
			in[i] = true
			if s&^reach != 0 {
				reach |= s
				changed = true
			}
		}
	}
	var out []logic.Term
	for i, c := range conjuncts {
		if in[i] {
			out = append(out, c)
		}
	}
	return out
}
