package sat

import (
	"strings"
	"testing"

	"repro/internal/drat"
)

// FuzzReadDIMACS checks the DIMACS reader never panics and that
// accepted formulas survive a write/read round trip with the same
// satisfiability.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("p cnf 3 1\n1 2 3 0")
	f.Add("p cnf 0 0\n")
	f.Add("1 0")
	f.Add("p cnf x y")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ReadDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.NumVars() > 24 || s.NumClauses() > 300 {
			return // keep the fuzz round trip cheap
		}
		want := s.Solve()
		var sb strings.Builder
		if err := s.WriteDIMACS(&sb); err != nil {
			t.Fatal(err)
		}
		s2, err := ReadDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rewritten DIMACS does not reparse: %v\n%s", err, sb.String())
		}
		if got := s2.Solve(); got != want {
			t.Fatalf("round trip changed satisfiability: %v -> %v", want, got)
		}
	})
}

// FuzzDifferential cross-checks the CDCL solver against a brute-force
// model enumerator on small formulas decoded from the fuzz input, and
// demands a checker-accepted proof for every Unsat verdict:
//
//   - Sat must agree with brute force, and the model must satisfy
//     every clause.
//   - Unsat must agree with brute force, and the recorded trace must
//     pass the independent RUP checker ending in a root conflict.
//   - Unsat under assumptions must agree with brute force, the core
//     must be a duplicate-free subset of the assumptions that is
//     itself sufficient for unsatisfiability, and the trace's terminal
//     lemma must be exactly the negated core.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 0, 1, 1})                            // unit + its negation
	f.Add([]byte{4, 2, 2, 0, 3, 2, 1, 2, 2, 4, 5, 1, 7, 0, 5}) // mixed clauses + assumptions
	f.Add([]byte{7, 1, 3, 0, 2, 4, 3, 5, 6, 8, 2, 9, 10, 1, 12, 2, 13, 1})
	f.Add([]byte{1, 2, 1, 0, 1, 1, 0, 1})
	// Binary implication chain 1->2->3->4->5 plus units 1 and -5:
	// unsat entirely through the binary implication lists.
	f.Add([]byte{7, 0, 1, 1, 2, 1, 3, 4, 1, 5, 6, 1, 7, 8, 0, 0, 0, 9})
	// Binary-heavy mix with two assumptions drawn from the tail:
	// exercises binary propagation under assumption cores.
	f.Add([]byte{7, 2, 1, 0, 2, 1, 4, 3, 2, 6, 8, 10, 1, 12, 14, 1, 9, 11, 0, 2, 1, 13, 15})
	// Ternary clauses threaded through shared variables: deep enough
	// reason chains for recursive minimization to fire.
	f.Add([]byte{6, 1, 2, 0, 2, 4, 2, 1, 6, 8, 2, 3, 10, 12, 2, 5, 9, 13, 2, 7, 11, 0, 2, 8, 12, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses, assume := decodeDiff(data)
		if nVars == 0 {
			return
		}
		s := NewSolver()
		tr := NewTrace()
		if err := s.SetProof(tr); err != nil {
			t.Fatal(err)
		}
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		toLit := func(l int) Lit {
			v := vars[abs(l)-1]
			return MkLit(v, l > 0)
		}
		for _, cl := range clauses {
			ls := make([]Lit, len(cl))
			for i, l := range cl {
				ls[i] = toLit(l)
			}
			s.AddClause(ls...)
		}
		st := s.Solve()
		want := bruteSat(nVars, clauses, nil)
		switch st {
		case Sat:
			if !want {
				t.Fatalf("solver Sat, brute force unsat: %v", clauses)
			}
			m := s.Model()
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					if m[abs(l)-1] == (l > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("model %v violates clause %v", m, cl)
				}
			}
		case Unsat:
			if want {
				t.Fatalf("solver Unsat, brute force sat: %v", clauses)
			}
			c := mustCheckTrace(t, tr)
			if !c.RootConflict() {
				t.Fatalf("plain Unsat proof checked but no root conflict reached")
			}
		default:
			t.Fatalf("unexpected status %v without a conflict budget", st)
		}

		if st != Sat || len(assume) == 0 {
			return
		}
		as := make([]Lit, len(assume))
		for i, l := range assume {
			as[i] = toLit(l)
		}
		st2 := s.Solve(as...)
		want2 := bruteSat(nVars, clauses, assume)
		if (st2 == Sat) != want2 {
			t.Fatalf("assumptions %v: solver %v, brute force sat=%v", assume, st2, want2)
		}
		if st2 != Unsat {
			return
		}
		core := s.Core()
		allowed := map[int]bool{}
		for _, l := range assume {
			allowed[l] = true
		}
		seen := map[int]bool{}
		coreInts := make([]int, 0, len(core))
		for _, l := range core {
			d := int(l.Var()) + 1
			if !l.IsPos() {
				d = -d
			}
			if !allowed[d] {
				t.Fatalf("core literal %d is not among the assumptions %v", d, assume)
			}
			if seen[d] {
				t.Fatalf("duplicate literal %d in core %v", d, core)
			}
			seen[d] = true
			coreInts = append(coreInts, d)
		}
		if len(coreInts) == 0 {
			t.Fatalf("empty core for Unsat under assumptions on a satisfiable formula")
		}
		if bruteSat(nVars, clauses, coreInts) {
			t.Fatalf("core %v is not sufficient: formula satisfiable under it", coreInts)
		}
		c := mustCheckTrace(t, tr)
		_ = c
		verdict := lastLearnOp(tr)
		if verdict == nil {
			t.Fatalf("no terminal lemma in the trace for an assumption Unsat")
		}
		wantLemma := map[int]bool{}
		for _, d := range coreInts {
			wantLemma[-d] = true
		}
		gotLemma := map[int]bool{}
		for _, l := range verdict {
			gotLemma[l] = true
		}
		if len(wantLemma) != len(gotLemma) {
			t.Fatalf("terminal lemma %v does not match negated core %v", verdict, coreInts)
		}
		for d := range wantLemma {
			if !gotLemma[d] {
				t.Fatalf("terminal lemma %v does not match negated core %v", verdict, coreInts)
			}
		}
	})
}

// FuzzPortfolioDifferential cross-checks a racing portfolio against a
// brute-force enumerator on small formulas: the team's verdict must
// match brute force regardless of which worker wins, every Unsat
// winner's trace — shared-clause imports included — must pass the
// independent RUP checker, and every Sat winner's model must satisfy
// the formula. The worker count cycles with the input so one corpus
// exercises the single-worker fast path and real races alike.
func FuzzPortfolioDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 0, 1, 1})
	f.Add([]byte{4, 2, 2, 0, 3, 2, 1, 2, 2, 4, 5, 1, 7, 0, 5})
	f.Add([]byte{7, 0, 1, 1, 2, 1, 3, 4, 1, 5, 6, 1, 7, 8, 0, 0, 0, 9})
	f.Add([]byte{6, 1, 2, 0, 2, 4, 2, 1, 6, 8, 2, 3, 10, 12, 2, 5, 9, 13, 2, 7, 11, 0, 2, 8, 12, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses, assume := decodeDiff(data)
		if nVars == 0 {
			return
		}
		nWorkers := len(data)%4 + 1
		base := NewSolver()
		tr := NewTrace()
		if err := base.SetProof(tr); err != nil {
			t.Fatal(err)
		}
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = base.NewVar()
		}
		toLit := func(l int) Lit {
			v := vars[abs(l)-1]
			return MkLit(v, l > 0)
		}
		p := NewPortfolio(base, nWorkers)
		for _, cl := range clauses {
			ls := make([]Lit, len(cl))
			for i, l := range cl {
				ls[i] = toLit(l)
			}
			p.AddClause(ls...)
		}
		as := make([]Lit, len(assume))
		for i, l := range assume {
			as[i] = toLit(l)
		}
		st := p.Solve(as...)
		want := bruteSat(nVars, clauses, assume)
		switch st {
		case Sat:
			if !want {
				t.Fatalf("portfolio(%d) Sat, brute force unsat: %v under %v", nWorkers, clauses, assume)
			}
			m := p.Model()
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					if m[abs(l)-1] == (l > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("portfolio(%d) model %v violates clause %v", nWorkers, m, cl)
				}
			}
		case Unsat:
			if want {
				t.Fatalf("portfolio(%d) Unsat, brute force sat: %v under %v", nWorkers, clauses, assume)
			}
			wtr, ok := p.Proof().(*Trace)
			if !ok {
				t.Fatalf("portfolio(%d) winner %d has no trace", nWorkers, p.Winner())
			}
			mustCheckTrace(t, wtr)
			if len(assume) > 0 {
				allowed := map[Lit]bool{}
				for _, l := range as {
					allowed[l] = true
				}
				for _, l := range p.Core() {
					if !allowed[l] {
						t.Fatalf("portfolio(%d) core literal %d not among assumptions", nWorkers, l)
					}
				}
			}
		default:
			t.Fatalf("portfolio(%d): unexpected status %v without a budget", nWorkers, st)
		}
	})
}

// decodeDiff turns fuzz bytes into a small CNF: byte 0 picks the
// variable count (1..8), byte 1 the assumption count (0..2, drawn from
// the tail), and the rest encode clauses as a length byte (1..4 lits)
// followed by literal bytes, up to 24 clauses.
func decodeDiff(data []byte) (nVars int, clauses [][]int, assume []int) {
	if len(data) < 2 {
		return 0, nil, nil
	}
	nVars = int(data[0])%8 + 1
	nAssume := int(data[1]) % 3
	decodeLit := func(b byte) int {
		v := int(b) % (2 * nVars)
		l := v/2 + 1
		if v%2 == 1 {
			l = -l
		}
		return l
	}
	for i := 2; i < len(data) && len(clauses) < 24; {
		n := int(data[i])%4 + 1
		i++
		var cl []int
		for j := 0; j < n && i < len(data); j++ {
			cl = append(cl, decodeLit(data[i]))
			i++
		}
		if len(cl) > 0 {
			clauses = append(clauses, cl)
		}
	}
	for i := 0; i < nAssume && i < len(data); i++ {
		assume = append(assume, decodeLit(data[len(data)-1-i]))
	}
	return nVars, clauses, assume
}

// bruteSat enumerates all assignments over nVars variables and reports
// whether one satisfies every clause and every forced literal.
func bruteSat(nVars int, clauses [][]int, forced []int) bool {
	holds := func(m uint, l int) bool {
		bit := m>>(abs(l)-1)&1 == 1
		return bit == (l > 0)
	}
	for m := uint(0); m < 1<<nVars; m++ {
		ok := true
		for _, l := range forced {
			if !holds(m, l) {
				ok = false
				break
			}
		}
		for _, cl := range clauses {
			if !ok {
				break
			}
			sat := false
			for _, l := range cl {
				if holds(m, l) {
					sat = true
					break
				}
			}
			ok = sat
		}
		if ok {
			return true
		}
	}
	return false
}

// mustCheckTrace replays the trace through the independent checker in
// internal/drat and fails the test on any rejected operation.
func mustCheckTrace(t *testing.T, tr *Trace) *drat.Checker {
	t.Helper()
	ops := make([]drat.Op, 0, tr.Len())
	for i := 0; i < tr.Len(); i++ {
		op := tr.Op(i)
		lits := make([]int, len(op.Lits))
		for j, l := range op.Lits {
			d := int(l.Var()) + 1
			if !l.IsPos() {
				d = -d
			}
			lits[j] = d
		}
		var k drat.OpKind
		switch op.Kind {
		case ProofInput:
			k = drat.Input
		case ProofLearn:
			k = drat.Learn
		default:
			k = drat.Delete
		}
		ops = append(ops, drat.Op{Kind: k, Lits: lits})
	}
	c, err := drat.Check(ops)
	if err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
	return c
}

// lastLearnOp returns the literals (as DIMACS ints) of the last Learn
// operation in the trace, or nil if there is none.
func lastLearnOp(tr *Trace) []int {
	for i := tr.Len() - 1; i >= 0; i-- {
		op := tr.Op(i)
		if op.Kind != ProofLearn {
			continue
		}
		out := make([]int, len(op.Lits))
		for j, l := range op.Lits {
			d := int(l.Var()) + 1
			if !l.IsPos() {
				d = -d
			}
			out[j] = d
		}
		return out
	}
	return nil
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
