package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenarios"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// TestReportMatchesGolden pins the whole-network explanation report of
// every seed scenario byte-for-byte against a committed golden file.
// The goldens were captured before the hash-consing layer landed, so
// this is the regression gate that term interning, solver memoization
// and candidate reuse stay invisible in the output. Regenerate with
// `go test ./internal/core -run TestReportMatchesGolden -update` and
// inspect the diff — any change here is a user-visible behavior change.
func TestReportMatchesGolden(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			dep := synthScenario(t, sc)
			e := newExplainer(t, sc, dep, nil)
			got, err := e.Report()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "report_"+sc.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report for %s differs from golden %s.\ngot:\n%s", sc.Name, path, got)
			}
		})
	}
}
