package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDIMACSRoundTrip(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(PosLit(v[0]), NegLit(v[1]))
	s.AddClause(PosLit(v[1]), PosLit(v[2]))
	s.AddClause(NegLit(v[2]))

	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "p cnf 3 ") {
		t.Fatalf("bad header: %q", out)
	}
	s2, err := ReadDIMACS(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != s2.Solve() {
		t.Fatal("round trip changed satisfiability")
	}
}

func TestReadDIMACSFormat(t *testing.T) {
	src := `
c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 || s.NumClauses() != 2 {
		t.Fatalf("vars=%d clauses=%d", s.NumVars(), s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("should be sat")
	}
	// Clause without trailing 0 at EOF is accepted.
	s2, err := ReadDIMACS(strings.NewReader("p cnf 1 1\n-1"))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Sat || s2.Value(0) != LFalse {
		t.Fatal("trailing clause lost")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	bad := []string{
		"1 2 0",            // clause before header
		"p cnf x 1\n1 0",   // bad var count
		"p dnf 2 1\n1 0",   // wrong format tag
		"p cnf 1 1\n2 0",   // literal exceeds declared vars
		"p cnf 1 1\nabc 0", // bad literal
	}
	for _, src := range bad {
		if _, err := ReadDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ReadDIMACS(%q) should fail", src)
		}
	}
}

func TestWriteDIMACSUnsatState(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	s.AddClause(NegLit(v))
	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Unsat {
		t.Fatal("unsat state must round trip to unsat")
	}
}

func TestWriteDIMACSPreservesUnits(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(PosLit(v[0]))               // level-0 unit
	s.AddClause(NegLit(v[0]), PosLit(v[1])) // forces x1 by propagation
	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Sat {
		t.Fatal("should be sat")
	}
	if s2.Value(0) != LTrue || s2.Value(1) != LTrue {
		t.Fatal("units lost in round trip")
	}
}

// Property: DIMACS round trip preserves satisfiability on random
// instances.
func TestQuickDIMACSRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 3 + r.Intn(8)
		form := randomCNF(r, nVars, 2+r.Intn(25), 3)
		s := NewSolver()
		newVars(s, nVars)
		for _, c := range form.clauses {
			s.AddClause(c...)
		}
		want := s.Solve()

		var sb strings.Builder
		if err := s.WriteDIMACS(&sb); err != nil {
			return false
		}
		s2, err := ReadDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return s2.Solve() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
