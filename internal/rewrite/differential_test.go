package rewrite

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/logic"
)

// This file pins the memoized one-shot normalizer against a reference
// implementation of the original pass-until-fixpoint driver (kept here,
// test-only, as the executable specification of the fifteen rules).
// Both implementations must agree on the MEANING of every term —
// checked by evaluating under assignments — though they may disagree
// on the exact syntactic normal form reached.

// refSimplifier is the original fixpoint simplifier: a full bottom-up
// rewrite of the whole term per pass, plus a conjunction-level
// equality-propagation pass, repeated until the term stops changing.
type refSimplifier struct {
	maxPasses int
}

func newRef() *refSimplifier { return &refSimplifier{maxPasses: 64} }

func (s *refSimplifier) simplify(t logic.Term) logic.Term {
	cur := t
	for pass := 0; pass < s.maxPasses; pass++ {
		memo := make(map[logic.Term]logic.Term)
		next := s.mapMemo(cur, memo)
		next = s.propagateEqualities(next)
		if logic.Equal(next, cur) {
			return next
		}
		cur = next
	}
	return cur
}

func (s *refSimplifier) mapMemo(t logic.Term, memo map[logic.Term]logic.Term) logic.Term {
	t = logic.Intern(t)
	if r, ok := memo[t]; ok {
		return r
	}
	out := t
	if n, ok := t.(*logic.Apply); ok {
		changed := false
		args := make([]logic.Term, len(n.Args))
		for i, a := range n.Args {
			args[i] = s.mapMemo(a, memo)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			out = logic.Intern(&logic.Apply{Op: n.Op, Args: args})
		}
	}
	out = s.node(out)
	memo[t] = out
	return out
}

func (s *refSimplifier) node(t logic.Term) logic.Term {
	a, ok := t.(*logic.Apply)
	if !ok {
		return t
	}
	switch a.Op {
	case logic.OpNot:
		return s.refNot(a)
	case logic.OpAnd:
		return s.refNary(a, logic.OpAnd)
	case logic.OpOr:
		return s.refNary(a, logic.OpOr)
	case logic.OpImplies:
		l, r := a.Args[0], a.Args[1]
		switch {
		case logic.IsFalse(l), logic.IsTrue(r):
			return logic.True
		case logic.IsTrue(l):
			return r
		case logic.IsFalse(r):
			return s.node(logic.Not(l))
		case logic.Equal(l, r):
			return logic.True
		}
	case logic.OpIff:
		l, r := a.Args[0], a.Args[1]
		switch {
		case logic.Equal(l, r):
			return logic.True
		case logic.IsTrue(l):
			return r
		case logic.IsTrue(r):
			return l
		case logic.IsFalse(l):
			return s.node(logic.Not(r))
		case logic.IsFalse(r):
			return s.node(logic.Not(l))
		case refIsComplement(l, r):
			return logic.False
		}
	case logic.OpIte:
		c, thn, els := a.Args[0], a.Args[1], a.Args[2]
		switch {
		case logic.IsTrue(c):
			return thn
		case logic.IsFalse(c):
			return els
		case logic.Equal(thn, els):
			return thn
		case thn.Sort().IsBool() && logic.IsTrue(thn) && logic.IsFalse(els):
			return c
		case thn.Sort().IsBool() && logic.IsFalse(thn) && logic.IsTrue(els):
			return s.node(logic.Not(c))
		}
	case logic.OpEq, logic.OpNe:
		return s.refEq(a)
	case logic.OpLt, logic.OpLe, logic.OpGt, logic.OpGe:
		return s.refCmp(a)
	case logic.OpAdd, logic.OpSub:
		return refArith(a)
	}
	return t
}

func (s *refSimplifier) refNot(a *logic.Apply) logic.Term {
	arg := a.Args[0]
	if logic.IsTrue(arg) {
		return logic.False
	}
	if logic.IsFalse(arg) {
		return logic.True
	}
	inner, ok := arg.(*logic.Apply)
	if !ok {
		return a
	}
	switch inner.Op {
	case logic.OpNot:
		return inner.Args[0]
	case logic.OpEq:
		return logic.Ne(inner.Args[0], inner.Args[1])
	case logic.OpNe:
		return logic.Eq(inner.Args[0], inner.Args[1])
	case logic.OpLt:
		return logic.Ge(inner.Args[0], inner.Args[1])
	case logic.OpLe:
		return logic.Gt(inner.Args[0], inner.Args[1])
	case logic.OpGt:
		return logic.Le(inner.Args[0], inner.Args[1])
	case logic.OpGe:
		return logic.Lt(inner.Args[0], inner.Args[1])
	}
	return a
}

func (s *refSimplifier) refNary(a *logic.Apply, op logic.Op) logic.Term {
	identity, annihilator := logic.Term(logic.True), logic.Term(logic.False)
	inner := logic.OpOr
	if op == logic.OpOr {
		identity, annihilator = logic.False, logic.True
		inner = logic.OpAnd
	}
	args := make([]logic.Term, 0, len(a.Args))
	changed := false
	for _, arg := range a.Args {
		if logic.Equal(arg, identity) {
			changed = true
			continue
		}
		if logic.Equal(arg, annihilator) {
			return annihilator
		}
		if nested, ok := arg.(*logic.Apply); ok && nested.Op == op {
			changed = true
			args = append(args, nested.Args...)
			continue
		}
		args = append(args, arg)
	}
	if deduped := logic.DedupTerms(args); len(deduped) != len(args) {
		changed = true
		args = deduped
	}
	if refHasComplementPair(args) {
		return annihilator
	}
	if filtered, fired := refAbsorb(args, inner); fired {
		changed = true
		args = filtered
	}
	if !changed {
		return a
	}
	if op == logic.OpAnd {
		return logic.And(args...)
	}
	return logic.Or(args...)
}

func refHasComplementPair(args []logic.Term) bool {
	for i, x := range args {
		for _, y := range args[i+1:] {
			if refIsComplement(x, y) {
				return true
			}
		}
	}
	return false
}

func refIsComplement(x, y logic.Term) bool {
	if nx, ok := x.(*logic.Apply); ok && nx.Op == logic.OpNot && logic.Equal(nx.Args[0], y) {
		return true
	}
	if ny, ok := y.(*logic.Apply); ok && ny.Op == logic.OpNot && logic.Equal(ny.Args[0], x) {
		return true
	}
	return false
}

func refAbsorb(args []logic.Term, inner logic.Op) ([]logic.Term, bool) {
	fired := false
	out := make([]logic.Term, 0, len(args))
	for i, cand := range args {
		app, ok := cand.(*logic.Apply)
		absorbed := false
		if ok && app.Op == inner {
			for j, other := range args {
				if i == j {
					continue
				}
				for _, operand := range app.Args {
					if logic.Equal(operand, other) {
						absorbed = true
						break
					}
				}
				if absorbed {
					break
				}
			}
		}
		if absorbed {
			fired = true
			continue
		}
		out = append(out, cand)
	}
	return out, fired
}

func (s *refSimplifier) refEq(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	ne := a.Op == logic.OpNe
	if logic.Equal(l, r) {
		return logic.NewBool(!ne)
	}
	if logic.IsLit(l) && logic.IsLit(r) {
		eq := literalsEqual(l, r)
		if ne {
			eq = !eq
		}
		return logic.NewBool(eq)
	}
	if l.Sort().IsBool() {
		if logic.IsTrue(l) || logic.IsTrue(r) || logic.IsFalse(l) || logic.IsFalse(r) {
			other, konst := l, r
			if logic.IsLit(l) {
				other, konst = r, l
			}
			truth := logic.IsTrue(konst)
			if ne {
				truth = !truth
			}
			if truth {
				return other
			}
			return s.node(logic.Not(other))
		}
	}
	if decided, val := domainDecidesEq(l, r); decided {
		if ne {
			val = !val
		}
		return logic.NewBool(val)
	}
	if ne {
		if folded := enumComplement(l, r); folded != nil {
			return folded
		}
		if folded := enumComplement(r, l); folded != nil {
			return folded
		}
	}
	return a
}

func (s *refSimplifier) refCmp(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	ll, lok := l.(*logic.IntLit)
	rl, rok := r.(*logic.IntLit)
	if lok && rok {
		var v bool
		switch a.Op {
		case logic.OpLt:
			v = ll.Val < rl.Val
		case logic.OpLe:
			v = ll.Val <= rl.Val
		case logic.OpGt:
			v = ll.Val > rl.Val
		default:
			v = ll.Val >= rl.Val
		}
		return logic.NewBool(v)
	}
	if logic.Equal(l, r) {
		return logic.NewBool(a.Op == logic.OpLe || a.Op == logic.OpGe)
	}
	if lo1, hi1, ok1 := intRange(l); ok1 {
		if lo2, hi2, ok2 := intRange(r); ok2 {
			switch a.Op {
			case logic.OpLt:
				if hi1 < lo2 {
					return logic.True
				}
				if lo1 >= hi2 {
					return logic.False
				}
			case logic.OpLe:
				if hi1 <= lo2 {
					return logic.True
				}
				if lo1 > hi2 {
					return logic.False
				}
			case logic.OpGt:
				if lo1 > hi2 {
					return logic.True
				}
				if hi1 <= lo2 {
					return logic.False
				}
			case logic.OpGe:
				if lo1 >= hi2 {
					return logic.True
				}
				if hi1 < lo2 {
					return logic.False
				}
			}
		}
	}
	return a
}

func refArith(a *logic.Apply) logic.Term {
	for _, arg := range a.Args {
		if _, ok := arg.(*logic.IntLit); !ok {
			return a
		}
	}
	if a.Op == logic.OpSub {
		return logic.NewInt(a.Args[0].(*logic.IntLit).Val - a.Args[1].(*logic.IntLit).Val)
	}
	var sum int64
	for _, arg := range a.Args {
		sum += arg.(*logic.IntLit).Val
	}
	return logic.NewInt(sum)
}

func (s *refSimplifier) propagateEqualities(t logic.Term) logic.Term {
	memo := make(map[logic.Term]logic.Term)
	return logic.Map(t, func(u logic.Term) logic.Term {
		a, ok := u.(*logic.Apply)
		if !ok || a.Op != logic.OpAnd {
			return u
		}
		bindings := map[string]logic.Term{}
		for _, c := range a.Args {
			if name, val, ok := unitBinding(c); ok {
				if _, dup := bindings[name]; !dup {
					bindings[name] = val
				}
			}
		}
		if len(bindings) == 0 {
			return u
		}
		changed := false
		args := make([]logic.Term, len(a.Args))
		for i, c := range a.Args {
			if name, _, ok := unitBinding(c); ok {
				sub := map[string]logic.Term{}
				for k, v := range bindings {
					if k != name {
						sub[k] = v
					}
				}
				args[i] = logic.Substitute(c, sub)
			} else {
				args[i] = logic.Substitute(c, bindings)
			}
			if args[i] != c {
				changed = true
			}
		}
		if !changed {
			return u
		}
		out := make([]logic.Term, len(args))
		for i, c := range args {
			out[i] = s.mapMemo(c, memo)
		}
		res := logic.And(out...)
		if ap, ok := res.(*logic.Apply); ok {
			return s.node(ap)
		}
		return res
	})
}

// equivalentUnderAllAssignments checks that a and b agree on every
// assignment over the shared test variable universe.
func equivalentUnderAllAssignments(t *testing.T, in, a, b logic.Term) bool {
	t.Helper()
	return forEachAssignment(func(env logic.Assignment) bool {
		va, errA := logic.EvalBool(a, env)
		vb, errB := logic.EvalBool(b, env)
		if errA != nil || errB != nil {
			t.Logf("eval error on %s: %v %v", in, errA, errB)
			return false
		}
		if va != vb {
			t.Logf("divergence on %v:\n  in:        %s\n  normalizer: %s = %v\n  fixpoint:   %s = %v",
				env, in, a, va, b, vb)
			return false
		}
		return true
	})
}

// TestDifferentialRandom drives both implementations over a large
// deterministic sample of random terms and requires agreement under
// every assignment, plus that the normalizer reaches a form no larger
// than the fixpoint's.
func TestDifferentialRandom(t *testing.T) {
	ref := newRef()
	for seed := int64(0); seed < 500; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randTerm(r, 4)
		got := Simplify(in)
		want := ref.simplify(in)
		if !equivalentUnderAllAssignments(t, in, got, want) {
			t.Fatalf("seed %d: normalizer diverges from fixpoint reference", seed)
		}
		if logic.Size(got) > logic.Size(want) {
			t.Fatalf("seed %d: normalizer form (%d nodes) larger than fixpoint form (%d nodes):\n  in:   %s\n  norm: %s\n  ref:  %s",
				seed, logic.Size(got), logic.Size(want), in, got, want)
		}
	}
}

// TestDifferentialRegressionCorpus runs the shapes the regression tests
// pin — the cases the explanation pipeline is known to depend on —
// through both implementations.
func TestDifferentialRegressionCorpus(t *testing.T) {
	x := logic.NewIntVar("i", 0, 3)
	y := logic.NewIntVar("j", 0, 3)
	b := logic.NewBoolVar("p")
	q := logic.NewBoolVar("q")
	e := logic.NewEnumVar("act", actSort)
	deny := logic.NewEnum(actSort, "deny")
	permit := logic.NewEnum(actSort, "permit")
	corpus := []logic.Term{
		logic.And(logic.Eq(x, logic.NewInt(3)), logic.Lt(x, logic.NewInt(2))),
		logic.And(logic.Eq(x, logic.NewInt(2)), logic.Eq(y, x)),
		logic.And(b, logic.Implies(b, logic.Lt(y, logic.NewInt(2)))),
		logic.And(logic.Not(b), logic.Or(b, logic.Eq(x, logic.NewInt(1)))),
		logic.Not(logic.Eq(e, permit)),
		logic.Or(logic.Eq(e, permit), logic.Eq(e, deny)),
		logic.And(b, logic.Or(b, q), logic.Or(b, logic.Not(q))),
		logic.Or(logic.And(b, q), b, logic.Not(q)),
		logic.And(logic.Eq(e, deny), logic.Implies(logic.Eq(e, deny), logic.Eq(x, logic.NewInt(0)))),
		logic.And(logic.Eq(x, logic.NewInt(3)), logic.Ite(logic.Eq(x, logic.NewInt(3)), b, q)),
		logic.Implies(logic.False, b),
		logic.Or(b, logic.Not(b)),
		logic.Iff(b, logic.Not(b)),
		logic.And(b, logic.Not(b), q),
	}
	ref := newRef()
	for i, in := range corpus {
		got := Simplify(in)
		want := ref.simplify(in)
		if !equivalentUnderAllAssignments(t, in, got, want) {
			t.Fatalf("corpus case %d: normalizer diverges from fixpoint reference", i)
		}
	}
}

// FuzzSimplifyDifferential is the fuzzing entry point for the same
// property, letting CI push past the fixed random sample.
func FuzzSimplifyDifferential(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	ref := newRef()
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		in := randTerm(r, 4)
		got := New().Simplify(in)
		want := ref.simplify(in)
		if !equivalentUnderAllAssignments(t, in, got, want) {
			t.Fatalf("normalizer diverges from fixpoint reference on %s", in)
		}
	})
}

// TestSharedCacheConcurrent hammers one shared normal-form cache from
// many goroutines over overlapping random terms and checks every
// result against a cold single-threaded simplifier. Run under -race
// (CI does) this also proves the cache safe for the parallel report
// workers.
func TestSharedCacheConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 60
	cache := NewCache()

	// Pre-compute expected normal forms cold.
	terms := make([]logic.Term, perG)
	want := make([]logic.Term, perG)
	for i := range terms {
		r := rand.New(rand.NewSource(int64(i)))
		terms[i] = randTerm(r, 5)
		want[i] = Simplify(terms[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewShared(cache)
			// Each goroutine visits the same terms in a different order.
			for k := 0; k < perG; k++ {
				i := (k*7 + g*13) % perG
				if got := s.Simplify(terms[i]); got != want[i] {
					errs <- fmt.Errorf("goroutine %d term %d: got %s want %s", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Hits() == 0 {
		t.Fatal("shared cache recorded no hits across goroutines")
	}
	if cache.Len() == 0 {
		t.Fatal("shared cache is empty after concurrent runs")
	}
}

// TestSharedCacheDeterministicDiagnostics checks that Passes and Stats
// for a term do not depend on cache warmth: a simplifier that computed
// everything itself and one answering entirely from a warm shared
// cache must report identical diagnostics.
func TestSharedCacheDeterministicDiagnostics(t *testing.T) {
	cache := NewCache()
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randTerm(r, 4)

		cold := NewShared(cache)
		out1 := cold.Simplify(in)

		warm := NewShared(cache)
		out2 := warm.Simplify(in)

		if out1 != out2 {
			t.Fatalf("seed %d: warm result differs: %s vs %s", seed, out1, out2)
		}
		if cold.Passes != warm.Passes {
			t.Fatalf("seed %d: Passes differ cold=%d warm=%d", seed, cold.Passes, warm.Passes)
		}
		for _, rule := range AllRules {
			if cold.Stats[rule] != warm.Stats[rule] {
				t.Fatalf("seed %d: %s fires differ cold=%d warm=%d",
					seed, rule, cold.Stats[rule], warm.Stats[rule])
			}
		}
	}
}

// TestPrivateCachePerConfig checks that flipping the ablation knobs
// does not replay normal forms computed under a different
// configuration.
func TestPrivateCachePerConfig(t *testing.T) {
	x := logic.NewIntVar("x", 0, 9)
	in := logic.And(logic.Eq(x, logic.NewInt(3)), logic.Lt(x, logic.NewInt(5)))

	s := NewShared(NewCache())
	if got := s.Simplify(in); got.String() != "x = 3" {
		t.Fatalf("default config: got %s", got)
	}
	s.DisableEqPropagation = true
	got := s.Simplify(in)
	if got.String() != "x = 3 & x < 5" {
		t.Fatalf("ablated config answered from default-config cache: %s", got)
	}
	if s.Stats[RuleEqPropagation] != 1 {
		t.Fatalf("expected exactly the default-config run's S14 fire, got %d", s.Stats[RuleEqPropagation])
	}
	// And back: the shared cache still answers the default config.
	s.DisableEqPropagation = false
	if got := s.Simplify(in); got.String() != "x = 3" {
		t.Fatalf("default config after flip-back: got %s", got)
	}
}

// BenchmarkFixpointReference measures the retired pass-until-fixpoint
// engine on the same random-term population the differential tests
// use, giving an in-binary old-vs-new comparison point
// (BenchmarkNormalizerSameTerms is the new engine on identical input).
func BenchmarkFixpointReference(b *testing.B) {
	terms := diffBenchTerms()
	ref := newRef()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range terms {
			ref.simplify(in)
		}
	}
}

// BenchmarkNormalizerSameTerms is the new engine over the exact term
// population of BenchmarkFixpointReference (cold cache per iteration).
func BenchmarkNormalizerSameTerms(b *testing.B) {
	terms := diffBenchTerms()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, in := range terms {
			s.Simplify(in)
		}
	}
}

func diffBenchTerms() []logic.Term {
	terms := make([]logic.Term, 200)
	for i := range terms {
		r := rand.New(rand.NewSource(int64(i)))
		terms[i] = randTerm(r, 6)
	}
	return terms
}
