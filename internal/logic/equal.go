package logic

import "hash/fnv"

// Equal reports structural equality of two terms. Variables compare by
// name and sort; literals by value; applications by operator and
// argument-wise equality. And/Or argument order is significant — the
// rewrite engine canonicalizes ordering where it matters.
func Equal(a, b Term) bool {
	if a == b {
		return true
	}
	switch x := a.(type) {
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name && SameSort(x.S, y.S)
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.Val == y.Val
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.Val == y.Val
	case *EnumLit:
		y, ok := b.(*EnumLit)
		return ok && x.Val == y.Val && SameSort(x.S, y.S)
	case *Apply:
		y, ok := b.(*Apply)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Hash computes a structural hash consistent with Equal: equal terms
// hash equally. It is used to deduplicate conjuncts and memoize
// rewriting.
func Hash(t Term) uint64 {
	h := fnv.New64a()
	hashTerm(t, h)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (int, error)
}

func hashTerm(t Term, h hasher) {
	switch n := t.(type) {
	case *Var:
		h.Write([]byte{1})
		h.Write([]byte(n.Name))
		hashSort(n.S, h)
	case *BoolLit:
		if n.Val {
			h.Write([]byte{2, 1})
		} else {
			h.Write([]byte{2, 0})
		}
	case *IntLit:
		h.Write([]byte{3})
		writeInt64(h, n.Val)
	case *EnumLit:
		h.Write([]byte{4})
		h.Write([]byte(n.Val))
		hashSort(n.S, h)
	case *Apply:
		h.Write([]byte{5, byte(n.Op)})
		writeInt64(h, int64(len(n.Args)))
		for _, a := range n.Args {
			hashTerm(a, h)
		}
	}
}

func hashSort(s *Sort, h hasher) {
	h.Write([]byte{byte(s.Kind)})
	if s.Kind == KindEnum {
		h.Write([]byte(s.Name))
	}
}

func writeInt64(h hasher, v int64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// DedupTerms removes structural duplicates from ts, preserving first
// occurrences.
func DedupTerms(ts []Term) []Term {
	seen := make(map[uint64][]Term, len(ts))
	out := ts[:0:0]
	for _, t := range ts {
		h := Hash(t)
		dup := false
		for _, prev := range seen[h] {
			if Equal(prev, t) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], t)
			out = append(out, t)
		}
	}
	return out
}
