package smt

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/logic"
	"repro/internal/sat"
)

func intVar(name string, lo, hi int64) *logic.Var {
	return logic.NewIntVar(name, lo, hi)
}

func TestAssertGuardedRetract(t *testing.T) {
	s := NewSolver()
	x := intVar("x", 0, 7)
	if err := s.Declare(x); err != nil {
		t.Fatal(err)
	}
	g, err := s.AssertGuarded(logic.Eq(x, logic.NewInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveGuards() != 1 {
		t.Fatalf("ActiveGuards = %d, want 1", s.ActiveGuards())
	}
	// While the guard is active, x is pinned to 3.
	st, err := s.Solve(logic.Eq(x, logic.NewInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	if st != sat.Unsat {
		t.Fatalf("guarded x=3 with assumption x=5: %v, want Unsat", st)
	}
	st, err = s.Solve(logic.Eq(x, logic.NewInt(3)))
	if err != nil || st != sat.Sat {
		t.Fatalf("guarded x=3 with assumption x=3: %v, %v", st, err)
	}
	// After retraction the constraint is gone; learnt clauses from the
	// guarded period must not leak it back in.
	s.Retract(g)
	if s.ActiveGuards() != 0 {
		t.Fatalf("ActiveGuards after Retract = %d, want 0", s.ActiveGuards())
	}
	st, err = s.Solve(logic.Eq(x, logic.NewInt(5)))
	if err != nil || st != sat.Sat {
		t.Fatalf("after retract, assumption x=5: %v, %v", st, err)
	}
	// Retracting twice is harmless.
	s.Retract(g)
	st, err = s.Solve()
	if err != nil || st != sat.Sat {
		t.Fatalf("after double retract: %v, %v", st, err)
	}
}

func TestGuardedMixesWithPlainAsserts(t *testing.T) {
	s := NewSolver()
	x := intVar("x", 0, 9)
	if err := s.Assert(logic.Lt(x, logic.NewInt(5))); err != nil {
		t.Fatal(err)
	}
	g, err := s.AssertGuarded(logic.Gt(x, logic.NewInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Solve(logic.Eq(x, logic.NewInt(1)))
	if err != nil || st != sat.Unsat {
		t.Fatalf("x<5 & guarded x>2, assume x=1: %v, %v (want Unsat)", st, err)
	}
	s.Retract(g)
	st, err = s.Solve(logic.Eq(x, logic.NewInt(1)))
	if err != nil || st != sat.Sat {
		t.Fatalf("x<5, assume x=1 after retract: %v, %v (want Sat)", st, err)
	}
	// The plain assert survives the retraction.
	st, err = s.Solve(logic.Eq(x, logic.NewInt(7)))
	if err != nil || st != sat.Unsat {
		t.Fatalf("x<5, assume x=7: %v, %v (want Unsat)", st, err)
	}
}

// TestCloneVerdictsAgree pins the smt-level Clone invariant: a warm
// clone (declared variables, asserted constraints, learnts from prior
// solves) answers exactly like the original and like a cold solver.
func TestCloneVerdictsAgree(t *testing.T) {
	build := func() (*Solver, *logic.Var, *logic.Var) {
		s := NewSolver()
		x := intVar("x", 0, 7)
		y := intVar("y", 0, 7)
		if err := s.Declare(x); err != nil {
			t.Fatal(err)
		}
		if err := s.Declare(y); err != nil {
			t.Fatal(err)
		}
		if err := s.Assert(logic.Lt(x, y)); err != nil {
			t.Fatal(err)
		}
		return s, x, y
	}
	s, x, y := build()
	// Warm up: a few solves so the original accumulates learnt state.
	for i := int64(0); i < 4; i++ {
		if _, err := s.Solve(logic.Eq(x, logic.NewInt(i))); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Clone()
	cold, cx, cy := build()

	probes := [][2]int64{{0, 0}, {3, 5}, {7, 7}, {6, 7}, {5, 2}}
	for _, p := range probes {
		want, err := cold.Solve(logic.Eq(cx, logic.NewInt(p[0])), logic.Eq(cy, logic.NewInt(p[1])))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Solve(logic.Eq(x, logic.NewInt(p[0])), logic.Eq(y, logic.NewInt(p[1])))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("probe %v: clone = %v, cold = %v", p, got, want)
		}
	}

	// Clone and original diverge independently after the snapshot.
	if err := c.Assert(logic.Eq(x, logic.NewInt(0))); err != nil {
		t.Fatal(err)
	}
	st, err := s.Solve(logic.Eq(x, logic.NewInt(3)))
	if err != nil || st != sat.Sat {
		t.Fatalf("original after clone constrained: %v, %v (want Sat)", st, err)
	}
	st, err = c.Solve(logic.Eq(x, logic.NewInt(3)))
	if err != nil || st != sat.Unsat {
		t.Fatalf("constrained clone: %v, %v (want Unsat)", st, err)
	}
}

// TestCloneCarriesGuards checks active guards stay in force on clones
// and can be retracted on each side independently.
func TestCloneCarriesGuards(t *testing.T) {
	s := NewSolver()
	x := intVar("x", 0, 3)
	if err := s.Declare(x); err != nil {
		t.Fatal(err)
	}
	g, err := s.AssertGuarded(logic.Eq(x, logic.NewInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	st, err := c.Solve(logic.Eq(x, logic.NewInt(1)))
	if err != nil || st != sat.Unsat {
		t.Fatalf("clone under inherited guard: %v, %v (want Unsat)", st, err)
	}
	c.Retract(g)
	st, err = c.Solve(logic.Eq(x, logic.NewInt(1)))
	if err != nil || st != sat.Sat {
		t.Fatalf("clone after retract: %v, %v (want Sat)", st, err)
	}
	// The original's guard is untouched by the clone's retraction.
	st, err = s.Solve(logic.Eq(x, logic.NewInt(1)))
	if err != nil || st != sat.Unsat {
		t.Fatalf("original after clone retract: %v, %v (want Unsat)", st, err)
	}
}

// TestEnumerateModelsRetractable checks the solver survives a scoped
// enumeration: the blocking clauses die with the walk, so the same
// models are visible again afterwards.
func TestEnumerateModelsRetractable(t *testing.T) {
	s := NewSolver()
	x := intVar("x", 0, 4)
	if err := s.Declare(x); err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(logic.Lt(x, logic.NewInt(3))); err != nil {
		t.Fatal(err)
	}
	count := func(retractable bool) int {
		n := 0
		var err error
		if retractable {
			_, _, err = s.EnumerateModelsRetractableContext(context.Background(), []*logic.Var{x}, 100, func(logic.Assignment) bool {
				n++
				return true
			})
		} else {
			_, _, err = s.EnumerateModels([]*logic.Var{x}, 100, func(logic.Assignment) bool {
				n++
				return true
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(true); got != 3 {
		t.Fatalf("first retractable walk: %d models, want 3", got)
	}
	if s.ActiveGuards() != 0 {
		t.Fatalf("guard leaked: ActiveGuards = %d", s.ActiveGuards())
	}
	// The solver is still usable and sees all models again.
	if got := count(true); got != 3 {
		t.Fatalf("second retractable walk: %d models, want 3", got)
	}
	st, err := s.Solve(logic.Eq(x, logic.NewInt(0)))
	if err != nil || st != sat.Sat {
		t.Fatalf("solve after retractable walks: %v, %v (want Sat)", st, err)
	}
	// A permanent walk, by contrast, exhausts the model space for good.
	if got := count(false); got != 3 {
		t.Fatalf("permanent walk: %d models, want 3", got)
	}
	if got := count(false); got != 0 {
		t.Fatalf("after permanent walk: %d models, want 0", got)
	}
}

// TestOverlappingSolvePanics pins the concurrency guard: a second
// SolveContext entered while one is in flight must panic rather than
// race. The overlap is simulated deterministically by marking the
// solver busy, exactly as an in-flight solve does.
func TestOverlappingSolvePanics(t *testing.T) {
	s := NewSolver()
	x := intVar("x", 0, 1)
	if err := s.Declare(x); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt32(&s.busy, 1)
	defer atomic.StoreInt32(&s.busy, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping SolveContext did not panic")
		}
	}()
	s.Solve() //nolint:errcheck // must panic before returning
}

// TestConcurrentSolveGuardUnderRace hammers one shared solver from
// many goroutines; every overlap must surface as the deterministic
// panic (which we recover), never as a data race (-race enforces).
func TestConcurrentSolveGuardUnderRace(t *testing.T) {
	s := NewSolver()
	x := intVar("x", 0, 63)
	y := intVar("y", 0, 63)
	if err := s.Declare(x); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare(y); err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(logic.Lt(x, y)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var panics int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					atomic.AddInt32(&panics, 1)
				}
			}()
			for i := 0; i < 20; i++ {
				s.Solve(logic.Eq(x, logic.NewInt(int64(g*7%64)))) //nolint:errcheck
			}
		}(g)
	}
	wg.Wait()
	// No assertion on the panic count: whether overlaps happen is
	// scheduling-dependent. The test's value is that -race stays quiet
	// because the guard stops the second goroutine before it touches
	// solver state.
	_ = panics
}
