package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/spec"
	"repro/internal/synth"
)

// Delta describes a what-if edit against the explainer's current
// problem: a new deployment (nil means unchanged), new requirements
// (nil means unchanged). ReExplain re-explains the edited problem
// incrementally.
type Delta struct {
	Deployment config.Deployment
	Reqs       []spec.Requirement
}

// DiffStats quantifies how much of a re-explanation was saved by the
// delta machinery.
type DiffStats struct {
	// EditedConfigs lists the routers whose configuration text changed
	// (by fingerprint), sorted.
	EditedConfigs []string
	// ModelChanged lists the routers the base-encoding diff attributes
	// the modeled candidate changes to (empty when the edit folds to
	// nothing the encoder models), sorted.
	ModelChanged []string
	// PredictedDirty lists the routers whose raw seed specification
	// differs from the cached generation's (the dirty set the sweep
	// observed), sorted. Empty on the fast path.
	PredictedDirty []string
	// Routers is the total number of routers in the report.
	Routers int
	// Spliced and Recomputed count routers whose lift stage was served
	// from the report cache versus recomputed.
	Spliced    int
	Recomputed int
	// FastPath reports that the edit was proven model-invisible and the
	// previous report was reused verbatim without any sweep.
	FastPath bool
	// ConeAtoms totals, across dirty routers, the number of new-seed
	// conjuncts inside the edits' cone of influence (free-variable
	// signature reachability).
	ConeAtoms int
	// CacheHits and CacheMisses are the report-cache lookups performed
	// by this re-explanation alone.
	CacheHits   int
	CacheMisses int
}

// DiffReport is ReExplain's output: the full report of the edited
// network (byte-identical to a cold Report over the same deployment)
// plus a changed-routers summary and the delta statistics.
type DiffReport struct {
	Report  string
	Summary string
	Stats   DiffStats
}

// ReExplain re-explains the network after an edit, reusing everything
// the edit provably leaves unchanged. See ReExplainContext.
func (e *Explainer) ReExplain(delta Delta) (*DiffReport, error) {
	return e.ReExplainContext(context.Background(), delta)
}

// ReExplainContext applies the delta to the explainer — on return
// (success or failure past validation) the explainer targets the
// edited problem — and produces the edited network's report
// incrementally:
//
//  1. Fingerprint the edit: configs by text, the modeled semantics by
//     diffing the predecessor and successor base encodings (hash-consed
//     candidate terms make this a pointer walk). An edit that changes
//     no modeled term, no vocabulary contribution, and no requirement
//     is answered with the previous report verbatim.
//  2. Otherwise sweep every router through the normal pipeline with
//     splicing enabled: encode and simplify run against warm shared
//     caches, and a router whose lift inputs are pointer-identical to
//     its cached generation splices the cached subspecification
//     instead of re-running the lift solvers.
//
// The report is byte-identical to a cold Report over the edited
// deployment: the sweep recomputes every reported figure, and splices
// only artifacts certified identical by hash-consing.
func (e *Explainer) ReExplainContext(ctx context.Context, delta Delta) (*DiffReport, error) {
	// ReExplain retargets the explainer (Deployment, Reqs, Session are
	// swapped in place), so it excludes every concurrent query for its
	// whole duration — including the sweep, whose splice flags are
	// per-explainer state ordinary queries must not observe.
	e.mu.Lock()
	defer e.mu.Unlock()
	newDep := delta.Deployment
	if newDep == nil {
		newDep = e.Deployment
	}
	for name, c := range newDep {
		if !c.Concrete() {
			return nil, fmt.Errorf("core: edited config %s still has holes", name)
		}
	}
	reqs := delta.Reqs
	reqsChanged := false
	if reqs == nil {
		reqs = e.Reqs
	} else {
		reqsChanged = !sameReqs(e.Reqs, reqs)
	}

	edited := config.DiffRouters(e.Deployment, newDep)
	sameSet := sameRouterSet(e.Deployment, newDep)
	modeledSame := sameSet && sameModeledConfigs(e.Deployment, newDep)

	ctx, cancelBudget := e.Opts.Budget.Apply(ctx)
	defer cancelBudget()

	var newSess *engine.Session
	var oldBase *synth.Base
	if e.Session != nil {
		oldBase = e.Session.EnsureBase(ctx)
		newSess = engine.NewSessionFrom(e.Session, reqs, newDep)
	} else {
		newSess = engine.NewSession(e.Net, reqs, newDep, e.Opts.Synth)
		newSess.Budget = e.Opts.Budget
		newSess.VerifyProofs = e.Opts.VerifyProofs
	}
	hits0, misses0 := newSess.ReportCache().Counters()

	newBase := newSess.EnsureBase(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bd := synth.DiffBases(oldBase, newBase)

	st := DiffStats{EditedConfigs: edited, Routers: len(newDep)}
	if bd.Comparable {
		st.ModelChanged = bd.Changed
	}

	prior := e.loadLastReport()
	e.Deployment = newDep
	e.Reqs = reqs
	e.Session = newSess

	// Fast path: the requirements are the same; no router appeared or
	// disappeared; every router's modeled fingerprint (config text
	// modulo the values the encoding ignores) and vocabulary
	// contribution are unchanged, so each symbolization surfaces the
	// same holes over the same sorts; and the base diff proves every
	// modeled candidate term pointer-identical. Then every router's
	// seed — hence its whole explanation — is unchanged, and the
	// previous report stands verbatim.
	if !reqsChanged && modeledSame && bd.Comparable && bd.Identical && prior != "" {
		// The successor session shares the report cache, so the retained
		// identity still resolves; re-store to refresh its LRU position.
		e.storeLastReport(prior)
		st.FastPath = true
		st.Spliced = len(newDep)
		return &DiffReport{Report: prior, Summary: renderDiffSummary(st), Stats: st}, nil
	}

	routers := e.reportRouters()
	if len(routers) > 1 {
		// Whole-network sweep ahead: record the scoped encode so each
		// router's derived encode splices its out-of-cone constraints.
		newSess.PrepareScoped(ctx)
	}
	e.spliceLift = true
	e.diffInfo = make(map[string]*routerDelta, len(routers))
	defer func() {
		e.spliceLift = false
		e.diffInfo = nil
	}()

	exs, err := e.explainSweep(ctx, routers)
	if err != nil {
		return nil, err
	}
	out := e.renderReport(routers, exs)
	e.storeLastReport(out)

	for i, r := range routers {
		if exs[i].liftSpliced {
			st.Spliced++
		} else {
			st.Recomputed++
		}
		if d := e.diffInfo[r]; d != nil && d.seedDelta != 0 {
			st.PredictedDirty = append(st.PredictedDirty, r)
			st.ConeAtoms += d.coneAtoms
		}
	}
	hits1, misses1 := newSess.ReportCache().Counters()
	st.CacheHits = hits1 - hits0
	st.CacheMisses = misses1 - misses0
	return &DiffReport{Report: out, Summary: renderDiffSummary(st), Stats: st}, nil
}

// renderDiffSummary renders the changed-routers summary appended to a
// diff report. Deterministic: every list is sorted.
func renderDiffSummary(st DiffStats) string {
	var sb strings.Builder
	sb.WriteString("WHAT-IF DELTA SUMMARY\n")
	sb.WriteString("=====================\n\n")
	fmt.Fprintf(&sb, "edited configs:  %s\n", nameList(st.EditedConfigs))
	if st.FastPath {
		sb.WriteString("modeled delta:   none (edit is invisible to the encoding)\n")
		fmt.Fprintf(&sb, "fast path:       previous report reused verbatim (%d of %d routers unchanged)\n",
			st.Spliced, st.Routers)
		return sb.String()
	}
	fmt.Fprintf(&sb, "modeled delta:   %s\n", nameList(st.ModelChanged))
	fmt.Fprintf(&sb, "dirty routers:   %s (%d of %d)\n",
		nameList(st.PredictedDirty), len(st.PredictedDirty), st.Routers)
	fmt.Fprintf(&sb, "lift stage:      %d spliced, %d recomputed\n", st.Spliced, st.Recomputed)
	if st.ConeAtoms > 0 {
		fmt.Fprintf(&sb, "edit cone:       %d seed atoms across dirty routers\n", st.ConeAtoms)
	}
	fmt.Fprintf(&sb, "report cache:    %d hits, %d misses\n", st.CacheHits, st.CacheMisses)
	return sb.String()
}

// nameList renders a sorted router list, or "none".
func nameList(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// sameReqs compares requirement lists by their printed form (the form
// the encoder consumes).
func sameReqs(a, b []spec.Requirement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// sameRouterSet reports whether both deployments configure exactly the
// same routers.
func sameRouterSet(a, b config.Deployment) bool {
	if len(a) != len(b) {
		return false
	}
	for name := range a {
		if _, ok := b[name]; !ok {
			return false
		}
	}
	return true
}

// sameModeledConfigs reports whether every router is unchanged as far
// as the encoder can tell: equal modeled fingerprint (config text with
// the encoding-invisible MED and next-hop values masked — line
// structure still counts, since symbolization surfaces a hole per
// line) and equal contribution to the deployment-dependent vocabulary
// (concrete community tags and next-hop IPs, which size the enum sorts
// every hole ranges over). Per-router equality is required — whole-
// deployment equality is not enough, because explaining router Y
// symbolizes Y away and sees only the other routers' contributions.
func sameModeledConfigs(a, b config.Deployment) bool {
	for name, ca := range a {
		cb, ok := b[name]
		if !ok {
			return false
		}
		if ca == cb {
			continue
		}
		if synth.ModeledFingerprint(ca) != synth.ModeledFingerprint(cb) {
			return false
		}
		if synth.VocabContribFingerprint(ca) != synth.VocabContribFingerprint(cb) {
			return false
		}
	}
	return true
}
