package engine

import (
	"container/list"
	"sort"
	"sync"
	"time"
)

// PoolItem is one pooled problem: the session holding its warm caches
// plus an opaque caller value (a serving layer stores the explainer
// built over the session). Between Checkout and Checkin the caller
// owns the item exclusively — nothing in it is shared with the pool.
type PoolItem struct {
	// Key identifies the problem the session was built for. Checkin
	// under the same key makes the warm state reusable by the next
	// request for that problem.
	Key     string
	Session *Session
	Value   any
}

// PoolGauges is a point-in-time reading of a SessionPool's occupancy
// and traffic counters.
type PoolGauges struct {
	// Idle and Leased are current occupancy: items parked in the pool
	// versus checked out (or being built) by callers. A quiescent pool
	// has Leased == 0.
	Idle   int
	Leased int
	// Hits and Misses count Checkout calls answered with a warm item
	// versus not; Evictions counts items displaced by the size cap or
	// by a same-key checkin.
	Hits      int
	Misses    int
	Evictions int
}

// SessionPool holds warm problem sessions for reuse across requests,
// LRU-evicting past a size cap. Leases are exclusive: Checkout removes
// the item, so two requests for one problem never share a session
// concurrently (engine.Session is concurrency-safe, but the explainer
// riding in Value serializes per problem anyway — a second concurrent
// request for the same key simply builds its own session and the
// warmer of the two survives checkin). Every Checkout — hit or miss —
// opens a lease the caller must close with exactly one Checkin or
// Drop.
//
// Evicted and displaced sessions fold their statistics into a retired
// accumulator so StatsSnapshot never loses work to eviction.
type SessionPool struct {
	mu      sync.Mutex
	limit   int
	idle    map[string]*list.Element
	lru     *list.List // of *PoolItem, front = most recent
	leased  int
	gauges  PoolGauges
	retired Stats
}

// NewSessionPool creates a pool holding at most limit idle items
// (limit <= 0 means unlimited).
func NewSessionPool(limit int) *SessionPool {
	return &SessionPool{
		limit: limit,
		idle:  make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// Checkout leases the idle item pooled under key. On a miss it returns
// nil, false and the lease is still open: the caller is expected to
// build the item and close the lease with Checkin (pooling the fresh
// build) or Drop (build failed).
func (p *SessionPool) Checkout(key string) (*PoolItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leased++
	el, ok := p.idle[key]
	if !ok {
		p.gauges.Misses++
		return nil, false
	}
	p.gauges.Hits++
	p.lru.Remove(el)
	delete(p.idle, key)
	return el.Value.(*PoolItem), true
}

// Checkin closes a lease by parking item for reuse under item.Key. An
// idle item already pooled under the key is displaced (its statistics
// are retired; the newly checked-in item is the one that just ran a
// query, so it is the warmer of the two), and a pool over its cap
// evicts the least-recently-used key.
func (p *SessionPool) Checkin(item *PoolItem) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leased--
	if el, ok := p.idle[item.Key]; ok {
		p.retireLocked(el.Value.(*PoolItem))
		p.lru.Remove(el)
		delete(p.idle, item.Key)
		p.gauges.Evictions++
	}
	p.idle[item.Key] = p.lru.PushFront(item)
	if p.limit > 0 {
		for p.lru.Len() > p.limit {
			el := p.lru.Back()
			old := el.Value.(*PoolItem)
			p.retireLocked(old)
			p.lru.Remove(el)
			delete(p.idle, old.Key)
			p.gauges.Evictions++
		}
	}
}

// Drop closes a lease without pooling anything (the build failed, or
// the item is known stale). item may be nil; a non-nil item's session
// statistics are still retired so its work is not lost from
// snapshots.
func (p *SessionPool) Drop(item *PoolItem) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leased--
	if item != nil {
		p.retireLocked(item)
	}
}

// retireLocked folds a departing item's session statistics into the
// retired accumulator. Its lift-latency sample window is dropped (the
// query count survives; percentiles are recomputed over live windows).
// Caller holds p.mu.
func (p *SessionPool) retireLocked(item *PoolItem) {
	if item.Session == nil {
		return
	}
	p.retired.Add(item.Session.Stats())
}

// Gauges returns the pool's current occupancy and traffic counters.
func (p *SessionPool) Gauges() PoolGauges {
	p.mu.Lock()
	defer p.mu.Unlock()
	g := p.gauges
	g.Idle = p.lru.Len()
	g.Leased = p.leased
	return g
}

// StatsSnapshot aggregates engine statistics across the pool: retired
// sessions plus every currently idle one. The lift percentiles are
// recomputed over the union of the idle sessions' sample windows
// (sorted, so the result is independent of pool iteration order).
// Leased items are not included — their work lands at checkin.
func (p *SessionPool) StatsSnapshot() Stats {
	p.mu.Lock()
	sessions := make([]*Session, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		if s := el.Value.(*PoolItem).Session; s != nil {
			sessions = append(sessions, s)
		}
	}
	st := p.retired
	p.mu.Unlock()

	var samples []int64
	for _, s := range sessions {
		st.Add(s.Stats())
		samples = append(samples, s.LiftSamples()...)
	}
	if n := len(samples); n > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		st.LiftP50 = time.Duration(samples[(n-1)*50/100])
		st.LiftP95 = time.Duration(samples[(n-1)*95/100])
	}
	return st
}
