package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
)

// problemTexts renders scenario1's problem in the wire formats, plus
// an edited variant for diff requests.
func problemTexts(t *testing.T) (topo, configs, spc, edited string) {
	t.Helper()
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	editedDep, edits := netgen.Perturb(res.Deployment, 1, 1)
	if len(edits) == 0 {
		t.Fatal("no edit sites")
	}
	return topology.Print(sc.Net), config.PrintDeployment(res.Deployment),
		spec.Print(sc.Spec), config.PrintDeployment(editedDep)
}

// wantReport renders the ground-truth report for the given problem
// texts through the same core API the netexplain CLI prints verbatim.
func wantReport(t *testing.T, topo, configs, spc string) string {
	t.Helper()
	net, err := topology.Parse(topo)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := config.ParseDeployment(configs)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse(spc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewExplainer(net, sp.Requirements(), dep, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func post(t *testing.T, h http.Handler, path string, req request) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decodeExplain(t *testing.T, w *httptest.ResponseRecorder) explainResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerExplainServesAndCaches(t *testing.T) {
	topo, configs, spc, _ := problemTexts(t)
	want := wantReport(t, topo, configs, spc)
	s := New(Options{})
	h := s.Handler()
	req := request{Topology: topo, Configs: configs, Spec: spc}

	w1 := post(t, h, "/explain", req)
	if got := decodeExplain(t, w1).Report; got != want {
		t.Fatalf("served report diverges from direct core report\n-- served --\n%s\n-- want --\n%s", got, want)
	}
	if hc := w1.Header().Get("X-Cache"); hc != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", hc)
	}

	// The identical request is served verbatim from the response cache.
	w2 := post(t, h, "/explain", req)
	if hc := w2.Header().Get("X-Cache"); hc != "hit" {
		t.Fatalf("repeat request X-Cache = %q, want hit", hc)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached body differs from the original response")
	}

	// Resource knobs are excluded from the cache key: same problem at a
	// different worker setting is still a hit (reports are
	// byte-identical across knobs).
	w3 := post(t, h, "/explain", request{Topology: topo, Configs: configs, Spec: spc, SatWorkers: 2, LiftWorkers: 2})
	if hc := w3.Header().Get("X-Cache"); hc != "hit" {
		t.Fatalf("knob-varied request X-Cache = %q, want hit", hc)
	}

	// But nolift changes the report and must miss.
	w4 := post(t, h, "/explain", request{Topology: topo, Configs: configs, Spec: spc, NoLift: true})
	if hc := w4.Header().Get("X-Cache"); hc != "miss" {
		t.Fatalf("nolift request X-Cache = %q, want miss", hc)
	}
	if decodeExplain(t, w4).Report == want {
		t.Fatal("nolift report identical to lifted report")
	}

	m := s.Snapshot()
	if m.Server.ResponseCacheHits != 2 || m.Server.ResponseCacheMisses != 2 {
		t.Fatalf("response cache hits/misses = %d/%d, want 2/2",
			m.Server.ResponseCacheHits, m.Server.ResponseCacheMisses)
	}
	if m.Server.Pool.Leased != 0 {
		t.Fatalf("pool leased = %d at quiescence, want 0", m.Server.Pool.Leased)
	}
	if m.Engine.Encodes == 0 || m.Engine.Solves == 0 {
		t.Fatalf("engine stats empty after serving: %+v", m.Engine)
	}
}

func TestServerDiffMatchesColdReport(t *testing.T) {
	topo, configs, spc, edited := problemTexts(t)
	want := wantReport(t, topo, edited, spc)
	s := New(Options{})
	h := s.Handler()

	w := post(t, h, "/diff", request{Topology: topo, Configs: configs, Spec: spc, EditedConfigs: edited})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	var resp diffResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Report != want {
		t.Fatalf("diff report diverges from cold report of the edited problem\n-- served --\n%s\n-- want --\n%s", resp.Report, want)
	}
	if !strings.Contains(resp.Summary, "WHAT-IF DELTA SUMMARY") {
		t.Fatalf("malformed summary:\n%s", resp.Summary)
	}
	if resp.Stats.Routers == 0 {
		t.Fatal("diff stats empty")
	}

	// The diff retargeted and pooled the explainer under the edited
	// problem: a follow-up /explain of the edited problem is a pool hit.
	w2 := post(t, h, "/explain", request{Topology: topo, Configs: edited, Spec: spc})
	if got := decodeExplain(t, w2).Report; got != want {
		t.Fatal("follow-up explain of the edited problem diverges")
	}
	g := s.Pool().Gauges()
	if g.Hits == 0 {
		t.Fatalf("follow-up explain missed the session pool: %+v", g)
	}
	if g.Leased != 0 {
		t.Fatalf("pool leased = %d at quiescence, want 0", g.Leased)
	}
}

func TestServerBadRequests(t *testing.T) {
	topo, configs, spc, _ := problemTexts(t)
	s := New(Options{})
	h := s.Handler()
	cases := []struct {
		name string
		path string
		req  request
	}{
		{"missing topology", "/explain", request{Configs: configs, Spec: spc}},
		{"missing configs", "/explain", request{Topology: topo, Spec: spc}},
		{"missing spec", "/explain", request{Topology: topo, Configs: configs}},
		{"bad topology", "/explain", request{Topology: "not a topology", Configs: configs, Spec: spc}},
		{"bad configs", "/explain", request{Topology: topo, Configs: "router bgp bogus", Spec: spc}},
		{"diff without edit", "/diff", request{Topology: topo, Configs: configs, Spec: spc}},
	}
	for _, tc := range cases {
		if w := post(t, h, tc.path, tc.req); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body: %s)", tc.name, w.Code, w.Body.String())
		}
	}
	if w := get(h, "/explain"); w.Code != http.StatusBadRequest {
		t.Errorf("GET /explain: status = %d, want 400", w.Code)
	}
	if w := get(h, "/healthz"); w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", w.Code, w.Body.String())
	}
	if m := s.Snapshot(); m.Server.BadRequests != len(cases)+1 {
		t.Errorf("BadRequests = %d, want %d", m.Server.BadRequests, len(cases)+1)
	}
	// Failed requests leak no leases.
	if g := s.Pool().Gauges(); g.Leased != 0 {
		t.Errorf("pool leased = %d after bad requests, want 0", g.Leased)
	}
}

// TestServerConcurrentMixedTraffic is the -race pin for the serving
// layer: goroutines hammer one server with mixed explain, diff,
// repeat (cache-hitting), and pre-cancelled requests. Every 200
// response must be byte-identical to the single-threaded ground truth,
// and the pool must return to idle with no leaked leases.
func TestServerConcurrentMixedTraffic(t *testing.T) {
	topo, configs, spc, edited := problemTexts(t)
	wantBase := wantReport(t, topo, configs, spc)
	wantEdited := wantReport(t, topo, edited, spc)
	s := New(Options{MaxInflight: 4, PoolSize: 2})
	h := s.Handler()

	const goroutines = 8
	const iters = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0: // explain base
					w := post(t, h, "/explain", request{Topology: topo, Configs: configs, Spec: spc})
					if w.Code != http.StatusOK {
						t.Errorf("g%d i%d explain: %d %s", g, i, w.Code, w.Body.String())
						return
					}
					var resp explainResponse
					json.Unmarshal(w.Body.Bytes(), &resp)
					if resp.Report != wantBase {
						t.Errorf("g%d i%d: base report diverged under concurrency", g, i)
					}
				case 1: // diff base -> edited
					w := post(t, h, "/diff", request{Topology: topo, Configs: configs, Spec: spc, EditedConfigs: edited})
					if w.Code != http.StatusOK {
						t.Errorf("g%d i%d diff: %d %s", g, i, w.Code, w.Body.String())
						return
					}
					var resp diffResponse
					json.Unmarshal(w.Body.Bytes(), &resp)
					if resp.Report != wantEdited {
						t.Errorf("g%d i%d: diff report diverged under concurrency", g, i)
					}
				case 2: // explain edited
					w := post(t, h, "/explain", request{Topology: topo, Configs: edited, Spec: spc})
					if w.Code != http.StatusOK {
						t.Errorf("g%d i%d explain edited: %d %s", g, i, w.Code, w.Body.String())
						return
					}
					var resp explainResponse
					json.Unmarshal(w.Body.Bytes(), &resp)
					if resp.Report != wantEdited {
						t.Errorf("g%d i%d: edited report diverged under concurrency", g, i)
					}
				case 3: // pre-cancelled request: must fail fast, leak nothing
					body, _ := json.Marshal(request{Topology: topo, Configs: configs, Spec: spc})
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					r := httptest.NewRequest(http.MethodPost, "/explain", bytes.NewReader(body)).WithContext(ctx)
					w := httptest.NewRecorder()
					h.ServeHTTP(w, r)
					// Either served from cache (200) or aborted — never a hang.
				}
			}
		}(g)
	}
	wg.Wait()

	g := s.Pool().Gauges()
	if g.Leased != 0 {
		t.Fatalf("pool leased = %d after traffic, want 0 (leaked lease)", g.Leased)
	}
	if int64(s.inflight.Load()) != 0 {
		t.Fatalf("inflight = %d after traffic, want 0", s.inflight.Load())
	}
	m := s.Snapshot()
	if m.Server.ResponseCacheHits == 0 {
		t.Fatal("no response-cache hits under repeated identical traffic")
	}

	// Zero leaked pooled solvers: every idle session's warm pool is
	// consistent — nothing is leased mid-air, so every pooled solver is
	// checked in. Metrics scrapes at quiescence are byte-stable.
	m1 := get(h, "/metrics").Body.String()
	m2 := get(h, "/metrics").Body.String()
	if m1 != m2 {
		t.Fatalf("metrics not byte-stable at quiescence:\n-- 1 --\n%s\n-- 2 --\n%s", m1, m2)
	}
}

// TestMetricsDeterministic pins the /metrics wire format with a golden
// body for a fresh server: fixed struct fields in declaration order,
// no maps, no timestamps. If this test fails after an intentional
// field addition, update the golden.
func TestMetricsDeterministic(t *testing.T) {
	s := New(Options{})
	w := get(s.Handler(), "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	var m Metrics
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	golden := `{
  "server": {
    "requests": 0,
    "explain_requests": 0,
    "diff_requests": 0,
    "bad_requests": 0,
    "errors": 0,
    "rejected": 0,
    "inflight": 0,
    "response_cache_hits": 0,
    "response_cache_misses": 0,
    "response_cache_entries": 0,
    "response_cache_evictions": 0,
    "pool": {
      "idle": 0,
      "leased": 0,
      "hits": 0,
      "misses": 0,
      "evictions": 0
    }
  },
  "engine": ` + goldenEngineJSON() + `
}
`
	if got := w.Body.String(); got != golden {
		t.Fatalf("metrics golden mismatch:\n-- got --\n%s\n-- want --\n%s", got, golden)
	}
}

// goldenEngineJSON renders the all-zero engine.Stats the way the
// metrics encoder nests it (two-space indent at depth 1). Deriving it
// from the struct keeps the golden in lockstep with intentional
// engine.Stats field additions while still pinning order and shape —
// any map-backed or otherwise order-unstable field would break the
// byte-for-byte scrape comparison in TestServerConcurrentMixedTraffic.
func goldenEngineJSON() string {
	b, err := json.MarshalIndent(engine.Stats{}, "  ", "  ")
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestServerExplainStream pins the streaming mode: the text/plain body
// is exactly the JSON response's report field, and a repeat request is
// served from the response cache with the streaming content type.
func TestServerExplainStream(t *testing.T) {
	topo, configs, spc, _ := problemTexts(t)
	want := wantReport(t, topo, configs, spc)
	s := New(Options{})
	h := s.Handler()
	req := request{Topology: topo, Configs: configs, Spec: spc, Stream: true}

	w := post(t, h, "/explain", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	if got := w.Body.String(); got != want {
		t.Errorf("streamed body differs from report:\n%s", got)
	}
	if w.Header().Get("X-Cache") != "miss" {
		t.Errorf("first stream X-Cache = %q, want miss", w.Header().Get("X-Cache"))
	}
	if !w.Flushed {
		t.Error("streamed response was never flushed")
	}

	w = post(t, h, "/explain", req)
	if w.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat stream X-Cache = %q, want hit", w.Header().Get("X-Cache"))
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("cached stream Content-Type = %q, want text/plain", ct)
	}
	if got := w.Body.String(); got != want {
		t.Error("cached streamed body differs")
	}

	// The JSON and streamed variants are cached under distinct keys:
	// a JSON request after a streamed one is a cache miss that still
	// returns the same report.
	jw := post(t, h, "/explain", request{Topology: topo, Configs: configs, Spec: spc})
	if got := decodeExplain(t, jw).Report; got != want {
		t.Error("JSON report differs from streamed report")
	}
	if jw.Header().Get("X-Cache") != "miss" {
		t.Errorf("JSON after stream X-Cache = %q, want miss (distinct cache keys)", jw.Header().Get("X-Cache"))
	}
}

// TestServerStreamError pins mid-stream failure behavior: a deadline
// that expires after the first section aborts the connection rather
// than appending a partial section or a misleading status.
func TestServerStreamError(t *testing.T) {
	topo, configs, spc, _ := problemTexts(t)
	s := New(Options{})
	h := s.Handler()

	// An immediately-cancelled request context fails before the first
	// byte: a clean JSON error, not an abort.
	body, err := json.Marshal(request{Topology: topo, Configs: configs, Spec: spc, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := httptest.NewRecorder()
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("pre-byte failure panicked: %v", r)
			}
		}()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/explain", bytes.NewReader(body)).WithContext(ctx))
	}()
	if w.Code == http.StatusOK {
		t.Fatalf("cancelled stream returned 200, body: %s", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("pre-byte failure Content-Type = %q, want JSON error", ct)
	}
}
