// Package repro_test benchmarks every experiment of the paper's
// evaluation (see DESIGN.md's experiment index): one benchmark per
// figure / claim, plus the scaling and ablation extensions. Custom
// metrics report the quantities the paper discusses (constraint atoms,
// reduction factors, subspec sizes) alongside wall-clock time.
//
// Run: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netgen"
	"repro/internal/rewrite"
	"repro/internal/sat"
	"repro/internal/scenarios"
	"repro/internal/synth"
	"repro/internal/topology"
	"repro/internal/verify"
)

// --- Figure 1: the end-to-end pipeline (spec + topology + sketch ->
// synthesized configs -> explanation). ---

func BenchmarkFig1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := scenarios.Scenario1()
		res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ex.ExplainAll("R1"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4-C1: seed specification size (encode only), per scenario. ---

func BenchmarkSeedSpecSize(b *testing.B) {
	for _, sc := range scenarios.All() {
		b.Run(sc.Name, func(b *testing.B) {
			var atoms int
			for i := 0; i < b.N; i++ {
				enc, err := synth.NewEncoder(sc.Net, sc.Sketch, synth.DefaultOptions()).Encode(sc.Requirements())
				if err != nil {
					b.Fatal(err)
				}
				atoms = enc.Stats.ConstraintSize
			}
			b.ReportMetric(float64(atoms), "atoms")
		})
	}
}

// --- §4-C2 / Figure 6: simplification of the seed. ---

func BenchmarkSimplifyReduction(b *testing.B) {
	for _, sc := range scenarios.All() {
		res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Lift = false
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sc.Name, func(b *testing.B) {
			var reduction float64
			for i := 0; i < b.N; i++ {
				e, err := ex.ExplainAll("R1")
				if err != nil {
					b.Fatal(err)
				}
				reduction = e.Reduction()
			}
			b.ReportMetric(reduction, "reduction_x")
		})
	}
}

// BenchmarkFig6SeedSimplify isolates the rewrite engine on the
// scenario-3 seed (the Figure 6 step 3 operation).
func BenchmarkFig6SeedSimplify(b *testing.B) {
	sc := scenarios.Scenario3()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Lift = false
	ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
	if err != nil {
		b.Fatal(err)
	}
	e, err := ex.ExplainAll("R1")
	if err != nil {
		b.Fatal(err)
	}
	seed := e.Seed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rewrite.New()
		out := s.Simplify(seed)
		if logic.Size(out) >= logic.Size(seed) {
			b.Fatal("no reduction")
		}
	}
}

// --- §4-C3: subspec size vs number of symbolized variables. ---

func BenchmarkSubspecLinearity(b *testing.B) {
	sc := scenarios.Scenario3()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Lift = false
	ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
	if err != nil {
		b.Fatal(err)
	}
	all := core.AllTargets(res.Deployment["R1"])
	for n := 1; n <= len(all); n++ {
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			var residual int
			for i := 0; i < b.N; i++ {
				e, err := ex.Explain("R1", all[:n])
				if err != nil {
					b.Fatal(err)
				}
				residual = e.ResidualSize
			}
			b.ReportMetric(float64(residual), "residual_atoms")
		})
	}
}

// --- §4-C4: per-variable explanation. ---

func BenchmarkPerVariableExplanation(b *testing.B) {
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Lift = false
	ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
	if err != nil {
		b.Fatal(err)
	}
	tgt := core.Target{Map: "R1_to_P1", Seq: 100, Field: core.FieldAction}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Explain("R1", []core.Target{tgt}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 2, 4, 5: full explanation with lifting, per scenario
// router. ---

func BenchmarkLiftedSubspec(b *testing.B) {
	cases := []struct {
		figure, scenario, router string
	}{
		{"fig2", "scenario1", "R1"},
		{"fig4", "scenario2", "R3"},
		{"fig5", "scenario3", "R2"},
	}
	for _, c := range cases {
		sc, err := scenarios.ByName(c.scenario)
		if err != nil {
			b.Fatal(err)
		}
		res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.figure, func(b *testing.B) {
			var clauses int
			for i := 0; i < b.N; i++ {
				e, err := ex.ExplainAll(c.router)
				if err != nil {
					b.Fatal(err)
				}
				if e.Subspec != nil {
					clauses = len(e.Subspec.Reqs)
				}
			}
			b.ReportMetric(float64(clauses), "subspec_clauses")
		})
	}
}

// --- Synthesis itself, per scenario. ---

func BenchmarkSynthesize(b *testing.B) {
	for _, sc := range scenarios.All() {
		b.Run(sc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ext-1: scalability (grid workloads of growing size). ---

func BenchmarkScalability(b *testing.B) {
	opts := synth.DefaultOptions()
	opts.MaxPathLen = 7
	opts.MaxCandidatesPerNode = 8
	for _, g := range [][2]int{{2, 2}, {3, 2}, {3, 3}} {
		b.Run(fmt.Sprintf("grid_%dx%d", g[0], g[1]), func(b *testing.B) {
			wl, err := netgen.Grid(g[0], g[1], false)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), opts)
				if err != nil {
					b.Fatal(err)
				}
				ok, err := verify.Satisfies(wl.Net, res.Deployment, wl.Requirements())
				if err != nil || !ok {
					b.Fatalf("verification failed: %v", err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks. ---

func BenchmarkBGPSimulation(b *testing.B) {
	net := topology.Paper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Simulate(net, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSATPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver()
		const holes = 7
		pigeons := make([][]sat.Var, holes+1)
		for p := range pigeons {
			pigeons[p] = make([]sat.Var, holes)
			lits := make([]sat.Lit, holes)
			for h := range pigeons[p] {
				pigeons[p][h] = s.NewVar()
				lits[h] = sat.PosLit(pigeons[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 <= holes; p1++ {
				for p2 := p1 + 1; p2 <= holes; p2++ {
					s.AddClause(sat.NegLit(pigeons[p1][h]), sat.NegLit(pigeons[p2][h]))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP must be unsat")
		}
	}
}

func BenchmarkRewriteFixpoint(b *testing.B) {
	// A synthetic 600-conjunct seed with one symbolic variable.
	act := logic.NewEnumSort("A", "permit", "deny")
	v := logic.NewEnumVar("x", act)
	var conjuncts []logic.Term
	conjuncts = append(conjuncts, logic.Implies(logic.Eq(v, logic.NewEnum(act, "permit")), logic.False))
	for i := 0; i < 600; i++ {
		n := logic.NewIntVar("k", 0, 100)
		conjuncts = append(conjuncts, logic.Or(
			logic.Le(n, logic.NewInt(100)),
			logic.Eq(n, logic.NewInt(int64(i%50))),
		))
	}
	seed := logic.And(conjuncts...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := rewrite.Simplify(seed)
		if !logic.ContainsVar(out, "x") {
			b.Fatal("lost the symbolic variable")
		}
	}
}
