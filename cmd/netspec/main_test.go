package main

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/topology"
)

func TestLintCleanSpec(t *testing.T) {
	net := topology.Paper()
	s, err := spec.Parse(`
Req1 { !(P1->...->P2) }
Req2 { (C->R3->R1->P1->...->D1) >> (C->R3->R2->P2->...->D1) }
Req3 { +(P1->R1->R3->C) }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := lint(s, net); got != 0 {
		t.Fatalf("clean spec produced %d warnings", got)
	}
}

func TestLintFindsProblems(t *testing.T) {
	net := topology.Paper()
	s, err := spec.Parse(`
Bad {
    !(P9->...->P2)
    (C->R3->P1) >> (C->R3->R1->P1)
    +(C->...->R1)
}`)
	if err != nil {
		t.Fatal(err)
	}
	got := lint(s, net)
	// P9 unknown; R3-P1 link nonexistent; preference/allow destinations
	// P1 (ok, has prefix) and R1 (no prefix).
	if got < 3 {
		t.Fatalf("lint found only %d problems", got)
	}
}
