package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/scenarios"
)

// TestSessionReportByteIdentical checks that the session-cached path
// (base encode + derived encodes) produces exactly the Report the
// per-call full-encode path produces, on every paper scenario. The
// candidate reuse must be invisible in the output.
func TestSessionReportByteIdentical(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			dep := synthScenario(t, sc)
			withSession := newExplainer(t, sc, dep, nil)
			if withSession.Session == nil {
				t.Fatal("NewExplainer did not install a session")
			}
			noSession := newExplainer(t, sc, dep, nil)
			noSession.Session = nil

			want, err := noSession.Report()
			if err != nil {
				t.Fatal(err)
			}
			got, err := withSession.Report()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("session report differs from per-call report.\nsession:\n%s\nper-call:\n%s", got, want)
			}
			if reused := withSession.Stats().ReusedCandidates; reused == 0 {
				t.Error("session report reused no candidates; the base encode is not being shared")
			}
		})
	}
}

// TestSessionOneBaseEncode checks the headline property of the shared
// cache: a whole-network report performs exactly one base encode, and
// repeating a query is answered from the cache.
func TestSessionOneBaseEncode(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)

	if _, err := e.Report(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// Two whole-network encodes: the shared base plus the scoped
	// recording the report sweep prepares so per-router encodes splice.
	if st.BaseEncodes != 2 {
		t.Errorf("BaseEncodes = %d after a multi-router report, want 2 (base + scoped recording)", st.BaseEncodes)
	}
	if st.Encodes < 2 {
		t.Errorf("Encodes = %d, want one per configured router (>= 2)", st.Encodes)
	}
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d on first report, want 0", st.CacheHits)
	}
	if st.EncodeTime <= 0 {
		t.Error("EncodeTime not recorded")
	}
	if st.Solves == 0 {
		t.Error("no solver stats folded in by lifting")
	}

	// A repeated explanation re-uses the cached encoding.
	if _, err := e.ExplainAll("R1"); err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.BaseEncodes != st.BaseEncodes {
		t.Errorf("BaseEncodes = %d after repeat, want still %d", st2.BaseEncodes, st.BaseEncodes)
	}
	if st2.Encodes != st.Encodes {
		t.Errorf("Encodes grew %d -> %d on a repeated query", st.Encodes, st2.Encodes)
	}
	if st2.CacheHits != st.CacheHits+1 {
		t.Errorf("CacheHits = %d after repeat, want %d", st2.CacheHits, st.CacheHits+1)
	}

	// CheckSubspec builds the same sketch as ExplainAll and must hit
	// the same cache entry.
	ex, err := e.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec != nil && !ex.Subspec.IsEmpty() {
		before := e.Stats()
		if _, err := e.CheckSubspec("R1", ex.Subspec); err != nil {
			t.Fatal(err)
		}
		after := e.Stats()
		if after.Encodes != before.Encodes {
			t.Errorf("CheckSubspec re-encoded (%d -> %d) instead of hitting the cache", before.Encodes, after.Encodes)
		}
	}
}

// TestBudgetDeadlineAbortsReport checks that an already-expired budget
// deadline aborts ExplainAll and Report cleanly — with a deadline
// error, not a hang or a partial result — and leaks no goroutines.
func TestBudgetDeadlineAbortsReport(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	opts := DefaultOptions()
	opts.Budget = engine.Budget{Deadline: time.Now().Add(-time.Second)}
	e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	if _, err := e.ExplainAll("R1"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExplainAll err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := e.Report(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Report err = %v, want context.DeadlineExceeded", err)
	}
	// The worker pool must have drained. NumGoroutine is noisy
	// (runtime helpers come and go), so allow it to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBudgetDeadlineMidReport cancels a report that is already under
// way and checks clean abort plus goroutine drain.
func TestBudgetDeadlineMidReport(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.ReportContext(ctx)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		// nil if the report beat the cancel; otherwise it must be the
		// cancellation, propagated from whatever layer saw it first.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("ReportContext err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ReportContext did not return after cancellation")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBudgetModelCapInExplainer checks the MaxModels knob reaches the
// sufficiency check: with a cap of 1 on a router whose subspec admits
// many behaviors, sufficiency cannot be concluded.
func TestBudgetModelCapInExplainer(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)

	full := newExplainer(t, sc, dep, nil)
	ref, err := full.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	if !ref.SubspecComplete {
		t.Skip("reference explanation not complete; cap comparison is meaningless")
	}

	opts := DefaultOptions()
	opts.Budget = engine.Budget{MaxModels: 1}
	capped, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := capped.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.SubspecComplete {
		t.Error("sufficiency reported complete under MaxModels=1; the budget cap is not reaching enumeration")
	}
}
