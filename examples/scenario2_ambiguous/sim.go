package main

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/scenarios"
	"repro/internal/synth"
	"repro/internal/topology"
)

// simulate runs the synthesized deployment on a (possibly degraded)
// network.
func simulate(net *topology.Network, res *synth.Result) (*bgp.Result, error) {
	return bgp.Simulate(net, res.Deployment)
}

// simPath returns C's primary forwarding path to D1.
func simPath(sc *scenarios.Scenario, res *synth.Result) ([]string, error) {
	sim, err := bgp.Simulate(sc.Net, res.Deployment)
	if err != nil {
		return nil, err
	}
	path := sim.ForwardingPath("C", sc.Net.Router("D1").Prefix)
	if path == nil {
		return nil, fmt.Errorf("C cannot reach D1 in the failure-free network")
	}
	return path, nil
}
