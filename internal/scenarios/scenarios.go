// Package scenarios builds the paper's three motivating scenarios
// (Section 2) as ready-to-run inputs: the Figure 1b topology, the
// intent specification, and a NetComplete-style configuration sketch
// whose holes the synthesizer fills. The examples, the explanation
// tests, and the benchmark harness all consume these.
package scenarios

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Scenario bundles one complete synthesis problem.
type Scenario struct {
	// Name identifies the scenario ("scenario1" ...).
	Name string
	// Title is the paper's description.
	Title string
	// Net is the topology (Figure 1b for all three).
	Net *topology.Network
	// Spec is the global intent.
	Spec *spec.Spec
	// Sketch is the partial configuration with holes.
	Sketch config.Deployment
}

// Requirements flattens the spec's requirement clauses.
func (s *Scenario) Requirements() []spec.Requirement { return s.Spec.Requirements() }

func mustSpec(src string) *spec.Spec {
	s, err := spec.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("scenarios: bad spec: %v", err))
	}
	return s
}

// exportSketch builds the Figure 1c-shaped export template at router
// toward peer: a first clause with a symbolic prefix match, action and
// next-hop parameter, then a symbolic catch-all clause.
func exportSketch(router, peer string) *config.RouteMap {
	base := fmt.Sprintf("%s_to_%s", router, peer)
	return &config.RouteMap{
		Name: base,
		Clauses: []*config.Clause{
			{
				Seq:        10,
				ActionHole: base + "_10_action",
				Matches: []*config.Match{
					{Kind: config.MatchPrefixList, ValueHole: base + "_10_match"},
				},
				Sets: []*config.Set{
					{Kind: config.SetNextHopIP, ParamHole: base + "_10_nexthop"},
				},
			},
			{
				Seq:        100,
				ActionHole: base + "_100_action",
			},
		},
	}
}

// taggerSketch builds the import template at router from peer that
// tags incoming routes with a symbolic community.
func taggerSketch(router, peer string) *config.RouteMap {
	base := fmt.Sprintf("%s_from_%s", router, peer)
	return &config.RouteMap{
		Name: base,
		Clauses: []*config.Clause{
			{
				Seq:    10,
				Action: config.Permit,
				Sets: []*config.Set{
					{Kind: config.SetCommunity, ParamHole: base + "_10_tag"},
				},
			},
		},
	}
}

// selectorSketch builds the import template at router from peer that
// matches a symbolic community, decides symbolically, and assigns a
// symbolic local preference, with a symbolic catch-all.
func selectorSketch(router, peer string) *config.RouteMap {
	base := fmt.Sprintf("%s_from_%s", router, peer)
	return &config.RouteMap{
		Name: base,
		Clauses: []*config.Clause{
			{
				Seq:        10,
				ActionHole: base + "_10_action",
				Matches: []*config.Match{
					{Kind: config.MatchCommunity, ValueHole: base + "_10_match"},
				},
				Sets: []*config.Set{
					{Kind: config.SetLocalPref, ParamHole: base + "_10_lp"},
				},
			},
			{
				Seq:        100,
				ActionHole: base + "_100_action",
				Sets: []*config.Set{
					{Kind: config.SetLocalPref, ParamHole: base + "_100_lp"},
				},
			},
		},
	}
}

// Scenario1 is "identifying underspecified paths": the no-transit
// intent over the Figure 1b topology, with export templates at the
// provider-facing routers. The synthesized completion blocks all
// routes toward the providers — satisfying the intent but also cutting
// customer connectivity, which the explanation at R1 (Figure 2)
// exposes.
func Scenario1() *Scenario {
	net := topology.Paper()

	r1 := config.New("R1")
	r1.AddRouteMap(exportSketch("R1", "P1"))
	r1.AddNeighbor("P1", "", "R1_to_P1")

	r2 := config.New("R2")
	r2.AddRouteMap(exportSketch("R2", "P2"))
	r2.AddNeighbor("P2", "", "R2_to_P2")

	r3 := config.New("R3") // no policies: the empty-subspec router

	return &Scenario{
		Name:  "scenario1",
		Title: "identifying underspecified paths (no-transit intent)",
		Net:   net,
		Spec: mustSpec(`
// No transit traffic (Figure 1a)
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}`),
		Sketch: config.Deployment{"R1": r1, "R2": r2, "R3": r3},
	}
}

// Scenario2 is "resolving ambiguous specifications": the path
// preference for destination D1 (Figure 3). The sketch tags routes at
// the provider edges and selects on community at R3. Under the
// synthesizer's interpretation, unlisted paths are blocked — the
// ambiguity the subspecification at R3 (Figure 4) reveals.
func Scenario2() *Scenario {
	net := topology.Paper()

	r1 := config.New("R1")
	r1.AddRouteMap(taggerSketch("R1", "P1"))
	r1.AddNeighbor("P1", "R1_from_P1", "")

	r2 := config.New("R2")
	r2.AddRouteMap(taggerSketch("R2", "P2"))
	r2.AddNeighbor("P2", "R2_from_P2", "")

	r3 := config.New("R3")
	r3.AddRouteMap(selectorSketch("R3", "R1"))
	r3.AddRouteMap(selectorSketch("R3", "R2"))
	r3.AddNeighbor("R1", "R3_from_R1", "")
	r3.AddNeighbor("R2", "R3_from_R2", "")

	return &Scenario{
		Name:  "scenario2",
		Title: "resolving ambiguous specifications (path preference to D1)",
		Net:   net,
		Spec: mustSpec(`
// For D1, prefer routes through P1 over routes through P2 (Figure 3)
Req2 {
    (C->R3->R1->P1->...->D1)
    >> (C->R3->R2->P2->...->D1)
}`),
		Sketch: config.Deployment{"R1": r1, "R2": r2, "R3": r3},
	}
}

// Scenario3 is "taming complexity": all requirements combined — the
// no-transit intent, the D1 path preference, and the customer
// reachability requirement the administrator added after Scenario 1
// (traffic from P1 must reach the customer network). Asking about the
// no-transit requirement alone yields an empty subspecification at R3
// and the drop-all subspecifications at R1/R2 (Figure 5).
func Scenario3() *Scenario {
	net := topology.Paper()

	r1 := config.New("R1")
	r1.AddRouteMap(exportSketch("R1", "P1"))
	r1.AddRouteMap(taggerSketch("R1", "P1"))
	r1.AddNeighbor("P1", "R1_from_P1", "R1_to_P1")

	r2 := config.New("R2")
	r2.AddRouteMap(exportSketch("R2", "P2"))
	r2.AddRouteMap(taggerSketch("R2", "P2"))
	r2.AddNeighbor("P2", "R2_from_P2", "R2_to_P2")

	r3 := config.New("R3")
	r3.AddRouteMap(selectorSketch("R3", "R1"))
	r3.AddRouteMap(selectorSketch("R3", "R2"))
	r3.AddNeighbor("R1", "R3_from_R1", "")
	r3.AddNeighbor("R2", "R3_from_R2", "")

	return &Scenario{
		Name:  "scenario3",
		Title: "taming complexity (all requirements combined)",
		Net:   net,
		Spec: mustSpec(`
// No transit traffic
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}
// For D1, prefer routes through P1 over routes through P2
Req2 {
    (C->R3->R1->P1->...->D1)
    >> (C->R3->R2->P2->...->D1)
}
// Allow traffic from Provider 1 to the customer network
Req3 {
    (P1->R1->R3->C)
    >> (P1->R1->R2->R3->C)
}`),
		Sketch: config.Deployment{"R1": r1, "R2": r2, "R3": r3},
	}
}

// All returns the three scenarios in order.
func All() []*Scenario {
	return []*Scenario{Scenario1(), Scenario2(), Scenario3()}
}

// ByName looks a scenario up.
func ByName(name string) (*Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenarios: unknown scenario %q (have scenario1, scenario2, scenario3)", name)
}
