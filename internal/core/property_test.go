package core

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/synth"
)

// TestSubspecRoundTripAcrossWorkloads is the explanation pipeline's
// end-to-end property: on seeded random workloads, the lifted
// subspecification of each sketched router must (a) hold of the
// synthesized configuration itself, and (b) be non-trivial whenever
// the router has residual constraints.
func TestSubspecRoundTripAcrossWorkloads(t *testing.T) {
	sopts := synth.DefaultOptions()
	sopts.MaxPathLen = 7
	sopts.MaxCandidatesPerNode = 8
	copts := DefaultOptions()
	copts.Synth = sopts

	for seed := int64(1); seed <= 6; seed++ {
		wl, err := netgen.Random(5+int(seed%4), 2.5, seed, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), sopts)
		if err != nil {
			continue // genuinely unsatisfiable instance
		}
		e, err := NewExplainer(wl.Net, wl.Requirements(), res.Deployment, copts)
		if err != nil {
			t.Fatal(err)
		}
		for router := range wl.Sketch {
			ex, err := e.ExplainAll(router)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, router, err)
			}
			if ex.Subspec == nil || ex.Subspec.IsEmpty() {
				continue
			}
			ok, err := e.SatisfiesSubspec(router, ex.Subspec)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, router, err)
			}
			if !ok {
				t.Fatalf("seed %d: %s's synthesized config violates its own subspec", seed, router)
			}
		}
	}
}

// TestSeedAlwaysSatisfiable: partial symbolization of a valid
// deployment always yields a satisfiable seed (the concrete values are
// a witness).
func TestSeedAlwaysSatisfiable(t *testing.T) {
	sopts := synth.DefaultOptions()
	sopts.MaxPathLen = 7
	sopts.MaxCandidatesPerNode = 8
	copts := DefaultOptions()
	copts.Synth = sopts
	for seed := int64(20); seed <= 26; seed++ {
		wl, err := netgen.Random(6, 2.5, seed, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), sopts)
		if err != nil {
			continue
		}
		e, err := NewExplainer(wl.Net, wl.Requirements(), res.Deployment, copts)
		if err != nil {
			t.Fatal(err)
		}
		for router := range wl.Sketch {
			// Explain errors out if the seed is unsatisfiable (the
			// lifting step solves it first).
			if _, err := e.ExplainAll(router); err != nil {
				t.Fatalf("seed %d, %s: %v", seed, router, err)
			}
		}
	}
}
