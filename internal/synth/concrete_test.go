package synth

import (
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/verify"
)

// TestEncodeConcreteConfigs exercises the symbolic route-map
// application over fully concrete configurations (the explainer's
// everyday case): all match kinds and set kinds with concrete values.
func TestEncodeConcreteConfigs(t *testing.T) {
	net := topology.Paper()
	c := config.New("R1")
	c.AddPrefixList(&config.PrefixList{Name: "pl", Entries: []config.PrefixEntry{
		{Seq: 10, Action: config.Permit, Prefix: topology.MustPrefix("128.0.2.0/24")},
		{Seq: 20, Action: config.Deny, Prefix: topology.MustPrefix("123.0.1.0/20")},
	}})
	c.AddRouteMap(&config.RouteMap{Name: "out", Clauses: []*config.Clause{
		{Seq: 10, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchPrefixList, PrefixList: "pl"}}},
		{Seq: 20, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R2"}}},
		{Seq: 25, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R3"}}},
		{Seq: 30, Action: config.Permit, Matches: []*config.Match{{Kind: config.MatchCommunity, Community: bgp.MustCommunity("100:1")}},
			Sets: []*config.Set{{Kind: config.SetLocalPref, LocalPref: 120}}},
		{Seq: 40, Action: config.Permit,
			Sets: []*config.Set{
				{Kind: config.SetCommunity, Community: bgp.MustCommunity("100:2")},
				{Kind: config.SetMED, MED: 7},
				{Kind: config.SetNextHopIP, NextHopIP: "10.0.0.1"},
			}},
	}})
	c.AddNeighbor("P1", "", "out")
	dep := config.Deployment{"R1": c}

	reqs := mustParseReqs(t, `Req { !(P1->...->P2) }`)
	enc, err := NewEncoder(net, dep, DefaultOptions()).Encode(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Stats.HoleVars != 0 {
		t.Fatalf("concrete configs produced %d hole vars", enc.Stats.HoleVars)
	}
	// With zero holes the constraint system is a ground formula; the
	// simulation decides it. The config blocks the P2 prefix (clause
	// 10) and every fabric-learned route (clauses 20/25), so no
	// traffic from P1 can transit to P2.
	vs, err := verify.Check(net, dep, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("concrete deployment violates forbid: %v", vs)
	}
	// No constraint may mention a variable (everything is ground).
	for _, cst := range enc.Constraints {
		for _, name := range logic.FreeVarNames(cst) {
			if !strings.HasPrefix(name, "sel_") {
				t.Fatalf("ground encoding contains non-selection variable %q", name)
			}
		}
	}
}

func mustParseReqs(t *testing.T, src string) []spec.Requirement {
	t.Helper()
	s, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s.Requirements()
}
