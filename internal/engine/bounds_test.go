package engine_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/scenarios"
	"repro/internal/smt"
	"repro/internal/synth"
)

// TestSessionCheckinDropsGuardedSolver is the regression test for the
// stale-warm-solver bug: a query that checks out a solver, asserts a
// temporary guarded constraint, is cancelled mid-solve, and checks the
// solver back in without retracting. Before the fix the poisoned
// solver was pooled and its leftover constraint silently flipped the
// verdicts of every later query under the key.
func TestSessionCheckinDropsGuardedSolver(t *testing.T) {
	s := newSession(t)
	p := logic.NewBoolVar("p")

	// The warm solver for the key asserts the base constraint p.
	sv := smt.NewSolver()
	if err := sv.Assert(p); err != nil {
		t.Fatal(err)
	}
	s.CheckinSolver("k", sv)

	// A query checks it out, asserts a temporary !p under a guard, and
	// is cancelled mid-solve — before the retraction runs.
	got := s.CheckoutSolver("k")
	if got != sv {
		t.Fatal("warm checkout did not return the pooled solver")
	}
	if _, err := got.AssertGuarded(logic.Not(p)); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := got.SolveContext(cancelled); err == nil {
		t.Fatal("cancelled solve returned no error")
	}

	// Checkin must refuse the non-pristine solver.
	s.CheckinSolver("k", got)
	if st := s.Stats(); st.WarmSolverDropped != 1 {
		t.Fatalf("WarmSolverDropped = %d, want 1", st.WarmSolverDropped)
	}
	if s.CheckoutSolver("k") != nil {
		t.Fatal("poisoned solver was pooled")
	}

	// The next query builds cold and gets the right verdict. (The
	// poisoned solver would answer Unsat: p and the unretracted !p.)
	fresh := smt.NewSolver()
	if err := fresh.Assert(p); err != nil {
		t.Fatal(err)
	}
	if st, err := fresh.SolveContext(context.Background()); err != nil || st != sat.Sat {
		t.Fatalf("fresh solve = %v, %v; want Sat", st, err)
	}
	s.CheckinSolver("k", fresh)
	if s.CheckoutSolver("k") != fresh {
		t.Fatal("pristine solver was not pooled")
	}
}

// TestSessionCheckinPoolsRetractedSolver pins the complement: a solver
// whose guarded constraint WAS retracted is pristine and must pool.
func TestSessionCheckinPoolsRetractedSolver(t *testing.T) {
	s := newSession(t)
	p := logic.NewBoolVar("p")
	sv := smt.NewSolver()
	if err := sv.Assert(p); err != nil {
		t.Fatal(err)
	}
	g, err := sv.AssertGuarded(logic.Not(p))
	if err != nil {
		t.Fatal(err)
	}
	sv.Retract(g)
	s.CheckinSolver("k", sv)
	if st := s.Stats(); st.WarmSolverDropped != 0 {
		t.Fatalf("WarmSolverDropped = %d, want 0", st.WarmSolverDropped)
	}
	got := s.CheckoutSolver("k")
	if got != sv {
		t.Fatal("retracted solver was not pooled")
	}
	// And it still answers the base problem correctly.
	if st, err := got.SolveContext(context.Background()); err != nil || st != sat.Sat {
		t.Fatalf("solve after retract = %v, %v; want Sat", st, err)
	}
}

func TestSessionSolverPoolCap(t *testing.T) {
	s := newSession(t)
	s.SetCacheLimits(engine.CacheLimits{Solvers: 2})
	s.CheckinSolver("a", smt.NewSolver())
	s.CheckinSolver("b", smt.NewSolver())
	s.CheckinSolver("c", smt.NewSolver()) // evicts a (least recent)
	if got := s.PooledSolvers(); got != 2 {
		t.Fatalf("PooledSolvers = %d, want 2", got)
	}
	if st := s.Stats(); st.WarmSolverEvicted != 1 {
		t.Fatalf("WarmSolverEvicted = %d, want 1", st.WarmSolverEvicted)
	}
	if s.CheckoutSolver("a") != nil {
		t.Fatal("evicted key still pooled")
	}
	if s.CheckoutSolver("b") == nil || s.CheckoutSolver("c") == nil {
		t.Fatal("retained keys missing")
	}

	// Recency order matters: touching a key protects it.
	s.CheckinSolver("x", smt.NewSolver())
	s.CheckinSolver("y", smt.NewSolver())
	sv := s.CheckoutSolver("x") // x becomes most recent at checkin below
	s.CheckinSolver("x", sv)
	s.CheckinSolver("z", smt.NewSolver()) // must evict y, not x
	if s.CheckoutSolver("x") == nil {
		t.Fatal("recently used key was evicted")
	}
	if s.CheckoutSolver("y") != nil {
		t.Fatal("least recently used key survived")
	}
}

func TestSessionTrim(t *testing.T) {
	s := newSession(t)
	s.CheckinSolver("a", smt.NewSolver())
	s.CheckinSolver("b", smt.NewSolver())
	s.AddLiftQueries([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	s.Trim()
	if got := s.PooledSolvers(); got != 0 {
		t.Fatalf("PooledSolvers after Trim = %d, want 0", got)
	}
	st := s.Stats()
	if st.WarmSolverEvicted != 2 {
		t.Fatalf("WarmSolverEvicted = %d, want 2", st.WarmSolverEvicted)
	}
	// Lift totals survive trimming.
	if st.LiftQueries != 2 {
		t.Fatalf("LiftQueries = %d, want 2", st.LiftQueries)
	}
	// The session still answers queries (pool rebuilds lazily).
	s.CheckinSolver("a", smt.NewSolver())
	if s.CheckoutSolver("a") == nil {
		t.Fatal("trimmed session refuses new checkins")
	}
}

func TestReportCacheLRU(t *testing.T) {
	rc := engine.NewReportCache()
	rc.SetMaxBytes(200)
	rc.Put("a", 1, 100)
	rc.Put("b", 2, 100)
	if _, ok := rc.Get("a"); !ok { // a is now most recent
		t.Fatal("a missing before overflow")
	}
	rc.Put("c", 3, 100) // over the byte cap: must evict b
	if _, ok := rc.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if v, ok := rc.Get("a"); !ok || v != 1 {
		t.Fatal("recently used entry a was evicted")
	}
	if v, ok := rc.Get("c"); !ok || v != 3 {
		t.Fatal("new entry c missing")
	}
	if rc.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", rc.Evictions())
	}
	if rc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rc.Len())
	}
	if rc.Bytes() != 200 {
		t.Fatalf("Bytes = %d, want 200", rc.Bytes())
	}
	// Shrinking the cap sheds immediately: c was read last, so it
	// survives and a goes.
	rc.SetMaxBytes(100)
	if rc.Len() != 1 || rc.Bytes() != 100 {
		t.Fatalf("after shrink: Len = %d, Bytes = %d; want 1, 100", rc.Len(), rc.Bytes())
	}
	// An entry larger than the whole cap is dropped, not stored: the
	// cap is a heap bound.
	rc.Put("big", 9, 500)
	if _, ok := rc.Get("big"); ok {
		t.Fatal("oversized entry survived")
	}
	if rc.Bytes() != 0 || rc.Len() != 0 {
		t.Fatalf("after oversized put: Len = %d, Bytes = %d; want 0, 0", rc.Len(), rc.Bytes())
	}
	hits, misses := rc.Counters()
	if hits != 3 || misses != 2 {
		t.Fatalf("counters = %d hits, %d misses; want 3, 2", hits, misses)
	}
}

func TestReportCacheDisplacementAccounting(t *testing.T) {
	rc := engine.NewReportCache()
	rc.Put("k", 1, 50)
	rc.Put("k", 2, 80) // displaces: accounted size follows the new value
	if rc.Bytes() != 80 {
		t.Fatalf("Bytes after displacement = %d, want 80", rc.Bytes())
	}
	if rc.Len() != 1 {
		t.Fatalf("Len after displacement = %d, want 1", rc.Len())
	}
}

func TestSessionSimplifyCacheBounded(t *testing.T) {
	s := newSession(t)
	s.SetCacheLimits(engine.CacheLimits{Simplify: 1})
	x := logic.NewIntVar("x", 0, 7)
	seedA := logic.And(logic.Eq(x, logic.NewInt(1)), logic.NewBoolVar("p"))
	seedB := logic.And(logic.Eq(x, logic.NewInt(2)), logic.NewBoolVar("q"))
	outA := s.Simplify(seedA)
	outB := s.Simplify(seedB) // evicts seedA's outcome
	st := s.Stats()
	if st.SimplifyEntries != 1 {
		t.Fatalf("SimplifyEntries = %d, want 1", st.SimplifyEntries)
	}
	if st.SimplifyEvictions != 1 {
		t.Fatalf("SimplifyEvictions = %d, want 1", st.SimplifyEvictions)
	}
	// The evicted seed recomputes to an equal (deterministic) outcome.
	outA2 := s.Simplify(seedA)
	if outA2.Simplified != outA.Simplified {
		t.Fatal("recomputed outcome differs from the evicted one")
	}
	if outB.Simplified == outA.Simplified {
		t.Fatal("distinct seeds simplified identically (test is vacuous)")
	}
}

func TestSessionLiftSampleWindow(t *testing.T) {
	s := newSession(t)
	s.SetCacheLimits(engine.CacheLimits{LiftSamples: 10})
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s.AddLiftQueries(ds)
	st := s.Stats()
	if st.LiftQueries != 100 {
		t.Fatalf("LiftQueries = %d, want 100 (total survives windowing)", st.LiftQueries)
	}
	if got := len(s.LiftSamples()); got != 10 {
		t.Fatalf("retained samples = %d, want 10", got)
	}
	// Percentiles are over the window (91..100ms): p50 nearest-rank at
	// index 4 → 95ms.
	if st.LiftP50 != 95*time.Millisecond {
		t.Fatalf("LiftP50 = %v, want 95ms (window, not all-time)", st.LiftP50)
	}
}

func TestSessionPoolLifecycle(t *testing.T) {
	p := engine.NewSessionPool(2)
	if _, ok := p.Checkout("a"); ok {
		t.Fatal("empty pool claimed a hit")
	}
	// Miss opened a lease; close it by checking in the fresh build.
	sa := newSession(t)
	p.Checkin(&engine.PoolItem{Key: "a", Session: sa, Value: "va"})
	g := p.Gauges()
	if g.Idle != 1 || g.Leased != 0 || g.Hits != 0 || g.Misses != 1 {
		t.Fatalf("gauges after first checkin = %+v", g)
	}

	item, ok := p.Checkout("a")
	if !ok || item.Session != sa || item.Value != "va" {
		t.Fatalf("checkout = %+v, %v; want the pooled item", item, ok)
	}
	if g := p.Gauges(); g.Leased != 1 || g.Idle != 0 {
		t.Fatalf("gauges mid-lease = %+v", g)
	}
	// Exclusive: a concurrent request for the same key misses.
	if _, ok := p.Checkout("a"); ok {
		t.Fatal("leased item handed out twice")
	}
	p.Drop(nil) // the concurrent request failed its build
	p.Checkin(item)
	if g := p.Gauges(); g.Leased != 0 || g.Idle != 1 {
		t.Fatalf("gauges after checkin = %+v", g)
	}
}

func TestSessionPoolEviction(t *testing.T) {
	p := engine.NewSessionPool(2)
	sessions := map[string]*engine.Session{}
	for _, k := range []string{"a", "b", "c"} {
		p.Checkout(k)
		s := newSession(t)
		s.AddLiftQueries([]time.Duration{time.Millisecond})
		sessions[k] = s
		p.Checkin(&engine.PoolItem{Key: k, Session: s})
	}
	g := p.Gauges()
	if g.Idle != 2 || g.Evictions != 1 {
		t.Fatalf("gauges = %+v; want Idle 2, Evictions 1", g)
	}
	// The evicted session ("a", least recent) retired its stats: the
	// snapshot still counts all three sessions' lift queries.
	if st := p.StatsSnapshot(); st.LiftQueries != 3 {
		t.Fatalf("snapshot LiftQueries = %d, want 3 (eviction must not lose work)", st.LiftQueries)
	}
	if _, ok := p.Checkout("a"); ok {
		t.Fatal("evicted key still pooled")
	}
	p.Drop(nil)

	// Same-key displacement keeps the newer item and retires the old.
	item, ok := p.Checkout("b")
	if !ok {
		t.Fatal("key b missing")
	}
	p.Checkout("b") // concurrent miss builds its own
	newer := newSession(t)
	p.Checkin(&engine.PoolItem{Key: "b", Session: newer})
	p.Checkin(item) // displaces newer? no: item displaces the pooled newer
	got, ok := p.Checkout("b")
	if !ok || got.Session != item.Session {
		t.Fatal("last checkin did not win the slot")
	}
	p.Checkin(got)
	if g := p.Gauges(); g.Leased != 0 {
		t.Fatalf("Leased = %d at quiescence, want 0", g.Leased)
	}
}

func TestStatsAdd(t *testing.T) {
	a := engine.Stats{Encodes: 1, Conflicts: 10, CoreLearnts: 5, LiftQueries: 3,
		LiftP50: time.Millisecond, ReportCacheHits: 2}
	b := engine.Stats{Encodes: 2, Conflicts: 5, CoreLearnts: 3, LiftQueries: 4,
		LiftP50: time.Second, ReportCacheHits: 1}
	a.LBDHist[0], b.LBDHist[0] = 7, 8
	a.Add(b)
	if a.Encodes != 3 || a.Conflicts != 15 || a.LiftQueries != 7 || a.ReportCacheHits != 3 {
		t.Fatalf("summed counters wrong: %+v", a)
	}
	if a.CoreLearnts != 5 {
		t.Fatalf("CoreLearnts = %d, want max 5", a.CoreLearnts)
	}
	if a.LBDHist[0] != 15 {
		t.Fatalf("LBDHist[0] = %d, want 15", a.LBDHist[0])
	}
	if a.LiftP50 != 0 || a.LiftP95 != 0 {
		t.Fatal("percentiles must zero on Add (recomputed by aggregators)")
	}
}

func TestNewSessionFromInheritsLimits(t *testing.T) {
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewSession(sc.Net, sc.Requirements(), res.Deployment, synth.DefaultOptions())
	s.SetCacheLimits(engine.CacheLimits{ReportBytes: 300, Simplify: 3, Solvers: 1, LiftSamples: 5})
	succ := engine.NewSessionFrom(s, sc.Requirements(), res.Deployment)
	// Solver limit traveled: a second checkin evicts.
	succ.CheckinSolver("a", smt.NewSolver())
	succ.CheckinSolver("b", smt.NewSolver())
	if got := succ.PooledSolvers(); got != 1 {
		t.Fatalf("successor PooledSolvers = %d, want 1 (limit inherited)", got)
	}
	// Lift window limit traveled.
	var ds []time.Duration
	for i := 1; i <= 20; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	succ.AddLiftQueries(ds)
	if got := len(succ.LiftSamples()); got != 5 {
		t.Fatalf("successor retained samples = %d, want 5", got)
	}
	// The shared report cache is the same object, still bounded.
	rc := succ.ReportCache()
	if rc != s.ReportCache() {
		t.Fatal("successor does not share the report cache")
	}
	for i := 0; i < 5; i++ {
		rc.Put(fmt.Sprintf("k%d", i), i, 100)
	}
	if rc.Len() != 3 {
		t.Fatalf("shared report cache Len = %d, want 3 (byte cap inherited)", rc.Len())
	}
}
