package sat

import "sort"

// Inprocessing: clause-database simplification run between restarts, at
// decision level 0, while a solve is in flight. Three techniques, in
// order of increasing ambition:
//
//   - Vivification: for each clause, assume the negation of its
//     literals one by one and unit-propagate; a conflict (or an implied
//     literal) proves a shorter clause that replaces the original.
//   - Subsumption: a clause C contained in a clause D makes D
//     redundant; C with exactly one literal negated in D strengthens D
//     by self-subsuming resolution. Candidate pairs are pre-filtered by
//     64-bit variable signatures before the exact literal check.
//   - Bounded variable elimination (BVE): a variable the caller marked
//     eliminable (MarkEliminable) is resolved away when the resolvent
//     set does not grow the database; the deleted clauses are saved so
//     Sat models can be extended back over the variable.
//
// Every transformation is emitted through the attached ProofWriter in
// checker-replayable order — the derived clause is logged (and checked
// RUP) while its parents are still live, then the parents are deleted —
// so internal/drat accepts inprocessed traces unchanged. All three are
// RUP-only derivations:
//
//   - a vivified clause's negation propagates to a conflict by
//     construction (that is exactly how it was found);
//   - a self-subsumption resolvent D\{¬l}: assuming its negation
//     falsifies C\{l}, so C propagates l, and D is then all-false;
//   - a BVE resolvent (A∨B) from (A∨v),(B∨¬v): assuming ¬A∧¬B
//     propagates both v and ¬v.
//
// Deletions are always sound for the checker (its database only
// shrinks), and deletions of clauses justifying root assignments are
// skipped by the checker, which keeps its database a superset of the
// solver's — a superset can only make future RUP checks easier.

// InprocessConfig tunes the inprocessing pass. The zero value enables
// inprocessing with the default gates; set Disabled to switch the pass
// off entirely.
type InprocessConfig struct {
	// Disabled switches inprocessing off.
	Disabled bool
	// MinClauses gates the pass to instances with at least this many
	// problem clauses. Zero means the default (tiny instances never
	// repay the sweep cost).
	MinClauses int
	// Interval is the number of conflicts between rounds. Zero means
	// the default.
	Interval uint64
	// PropBudget caps the unit propagations one vivification round may
	// spend. Zero means the default.
	PropBudget uint64
	// MaxOccurrences bounds, per polarity, how many problem clauses may
	// contain a variable for it to be eliminated. Zero means the
	// default.
	MaxOccurrences int
	// MaxResolventLen skips elimination of a variable if any resolvent
	// would exceed this many literals. Zero means the default.
	MaxResolventLen int
}

const (
	// The defaults make inprocessing a background hygiene pass for
	// large, long-lived instances — warm pooled solvers accumulating
	// conflicts across many queries — rather than a per-solve tax:
	// firing every few hundred conflicts on small instances swings
	// satisfiable search trajectories chaotically (measured both 2.4x
	// worse and 2.5x better on 200-var random 3-SAT, pure variance)
	// while the simplification pays only when the clause database is
	// big enough to stay simplified across future solves.
	defaultInprocMinClauses = 500
	defaultInprocInterval   = 4000
	defaultInprocPropBudget = 200000
	defaultInprocMaxOcc     = 10
	defaultInprocMaxResLen  = 12
)

// MarkEliminable declares that the caller will never mention v again —
// not in clauses, not in assumptions, not via Value — beyond reading it
// out of a model. Bounded variable elimination only ever resolves away
// marked variables: auxiliary encoding variables (Tseitin definitions,
// at-most-one ladders) qualify, problem variables the caller queries do
// not. Eliminated variables still receive correct model values (the
// deleted clauses are replayed over the model).
func (s *Solver) MarkEliminable(v Var) {
	s.eliminable[v] = true
}

// inprocessDue reports whether the next restart boundary should run a
// simplification round.
func (s *Solver) inprocessDue() bool {
	cfg := &s.Inprocess
	if cfg.Disabled || !s.ok {
		return false
	}
	min := cfg.MinClauses
	if min == 0 {
		min = defaultInprocMinClauses
	}
	if len(s.clauses) < min {
		return false
	}
	iv := cfg.Interval
	if iv == 0 {
		iv = defaultInprocInterval
	}
	return s.Stats.Conflicts-s.inprocConfl >= iv
}

// inprocess runs one simplification round: vivification, subsumption,
// then bounded variable elimination. It must be called at decision
// level 0 with propagation at fixpoint. It returns false when
// simplification proves the database unsatisfiable at the top level.
func (s *Solver) inprocess() bool {
	s.inprocConfl = s.Stats.Conflicts
	s.Stats.InprocessRounds++
	ok := s.vivifyRound() && s.subsumeRound() && s.eliminateRound()
	s.compactDB()
	return ok
}

// compactDB drops clauses marked dead by the round and re-homes learnt
// clauses promoted to problem status (a learnt that subsumed a problem
// clause must outlive reduceDB). Relative order is preserved so the
// pass stays deterministic.
func (s *Solver) compactDB() {
	clauses := s.clauses[:0]
	for _, c := range s.clauses {
		if !c.dead {
			clauses = append(clauses, c)
		}
	}
	learnts := s.learnts[:0:0]
	for _, c := range s.learnts {
		switch {
		case c.dead:
		case c.learnt:
			learnts = append(learnts, c)
		default:
			clauses = append(clauses, c) // promoted
		}
	}
	s.clauses = clauses
	s.learnts = learnts
	s.Stats.Clauses = len(s.clauses)
	s.updateTierGauges()
}

// delClause detaches the clause, logs its deletion, and marks it dead
// for compactDB. If the clause justifies a root assignment the reason
// pointer is cleared — root reasons are never consulted again (conflict
// analysis stops above level 0), but a dangling pointer would pin the
// clause and confuse locked().
func (s *Solver) delClause(c *clause) {
	s.detach(c)
	if r := c.lits[0]; s.value(r) == LTrue && s.reason[r.Var()] == c {
		s.reason[r.Var()] = nil
	}
	s.logProof(ProofDelete, c.lits)
	s.Stats.InprocessDeleted++
	c.dead = true
}

// enqueueDerivedUnit installs a freshly derived (and already
// proof-logged) unit fact at the root. It returns false when the unit
// contradicts the root assignment, which proves top-level
// unsatisfiability.
func (s *Solver) enqueueDerivedUnit(l Lit) bool {
	switch s.value(l) {
	case LTrue:
		return true
	case LFalse:
		s.ok = false
		s.logEmptyClause()
		return false
	}
	s.uncheckedEnqueue(l, nil)
	if s.propagate() != nil {
		s.ok = false
		s.logEmptyClause()
		return false
	}
	return true
}

// replaceClause swaps the clause's literals for the strictly stronger
// newLits (already proof-logged as a Learn). newLits must contain no
// root-assigned literals so the re-attached watches are valid. It
// returns false on top-level unsatisfiability.
func (s *Solver) replaceClause(c *clause, newLits []Lit) bool {
	s.detach(c)
	s.logProof(ProofDelete, c.lits)
	s.Stats.InprocessDeleted++
	switch len(newLits) {
	case 0:
		c.dead = true
		s.ok = false
		s.logEmptyClause()
		return false
	case 1:
		c.dead = true
		return s.enqueueDerivedUnit(newLits[0])
	}
	c.lits = append(c.lits[:0], newLits...)
	if c.learnt && c.lbd > int32(len(newLits)) {
		c.lbd = int32(len(newLits))
	}
	s.attach(c)
	return true
}

// vivifyRound vivifies the problem clauses and the useful learnt tiers
// (glue and mid), bounded by the propagation budget.
func (s *Solver) vivifyRound() bool {
	budget := s.Inprocess.PropBudget
	if budget == 0 {
		budget = defaultInprocPropBudget
	}
	start := s.Stats.Propagations
	cand := make([]*clause, 0, len(s.clauses)+len(s.learnts))
	cand = append(cand, s.clauses...)
	for _, c := range s.learnts {
		if c.lbd <= midLBD {
			cand = append(cand, c)
		}
	}
	for _, c := range cand {
		if s.Stats.Propagations-start > budget {
			break
		}
		if c.dead {
			continue
		}
		if !s.vivifyClause(c) {
			return false
		}
	}
	return true
}

// vivifyClause assumes the negation of the clause's literals in order,
// propagating after each, and replaces the clause when the walk proves
// a shorter one. Root-satisfied clauses are deleted outright,
// root-false literals dropped.
func (s *Solver) vivifyClause(c *clause) bool {
	// The walk reads a snapshot: propagation reorders c.lits (watch
	// normalization), and the clause itself may propagate its own last
	// literal — harmless, it just proves the clause back.
	lits := append(s.vivScratch[:0], c.lits...)
	s.vivScratch = lits

	keep := make([]Lit, 0, len(lits))
	conflicted, shortened, rootSat := false, false, false
	s.trailLim = append(s.trailLim, len(s.trail))
	for _, l := range lits {
		switch s.value(l) {
		case LTrue:
			if s.level[l.Var()] == 0 {
				rootSat = true
			} else {
				// Implied by the assumed prefix: the clause
				// (prefix ∨ l) is proven; the rest is redundant.
				keep = append(keep, l)
				shortened = shortened || len(keep) < len(lits)
			}
		case LFalse:
			if s.level[l.Var()] == 0 {
				shortened = true // root-false literal: drop
				continue
			}
			// Falsified by the assumed prefix: l is redundant in the
			// clause (the prefix alone forces ¬l).
			shortened = true
			continue
		default:
			s.uncheckedEnqueue(l.Neg(), nil)
			keep = append(keep, l)
			if s.propagate() != nil {
				// The assumed prefix is contradictory: it proves the
				// clause over just the prefix literals.
				conflicted = true
				shortened = shortened || len(keep) < len(lits)
			}
		}
		if conflicted || rootSat || (len(keep) > 0 && s.value(keep[len(keep)-1]) == LTrue) {
			break
		}
	}

	// Unwind the probe without polluting phase saving: cancelUntil
	// records the probe's artificial polarities, so snapshot and
	// restore the saved phases of everything assigned above the root.
	base := s.trailLim[len(s.trailLim)-1]
	s.phaseScratch = s.phaseScratch[:0]
	for _, l := range s.trail[base:] {
		s.phaseScratch = append(s.phaseScratch, phaseSave{v: l.Var(), ph: s.phase[l.Var()]})
	}
	s.cancelUntil(0)
	for _, p := range s.phaseScratch {
		s.phase[p.v] = p.ph
	}

	if rootSat {
		s.delClause(c)
		return true
	}
	if !shortened || len(keep) >= len(c.lits) {
		return true
	}
	s.Stats.VivifiedLits += uint64(len(c.lits) - len(keep))
	s.Stats.VivifiedClauses++
	if len(keep) == 0 {
		// Every literal was root-false: the database already conflicts.
		s.ok = false
		s.logEmptyClause()
		return false
	}
	s.logProof(ProofLearn, keep)
	return s.replaceClause(c, keep)
}

// phaseSave is one entry of the vivification phase snapshot.
type phaseSave struct {
	v  Var
	ph bool
}

// varSig folds the clause's variables into a 64-bit signature. Variable
// (not literal) bits, so self-subsumption candidates — which differ in
// one polarity — still pass the subset filter.
func varSig(lits []Lit) uint64 {
	var sig uint64
	for _, l := range lits {
		sig |= 1 << (uint64(l.Var()) & 63)
	}
	return sig
}

// subsumeRound removes subsumed clauses and applies self-subsuming
// strengthening across the live database (problem clauses and
// learnts). For each clause C, candidates D are found through the
// occurrence list of C's least-occurring literal (complete for
// subsumption: D ⊇ C contains that literal too), plus that literal's
// negation for the strengthening-on-it case.
func (s *Solver) subsumeRound() bool {
	cand := make([]*clause, 0, len(s.clauses)+len(s.learnts))
	cand = append(cand, s.clauses...)
	cand = append(cand, s.learnts...)
	// Smallest first: short clauses are the strongest subsumers, and a
	// clause only checks candidates at least as long as itself.
	sort.SliceStable(cand, func(i, j int) bool { return len(cand[i].lits) < len(cand[j].lits) })

	occ := make([][]int32, len(s.watches)) // by Lit, over cand indices
	sigs := make([]uint64, len(cand))
	for i, c := range cand {
		sigs[i] = varSig(c.lits)
		for _, l := range c.lits {
			occ[l] = append(occ[l], int32(i))
		}
	}

	for _, c := range cand {
		if c.dead || s.rootSatisfied(c) {
			continue
		}
		// Least-occurring literal of C.
		min := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(occ[l]) < len(occ[min]) {
				min = l
			}
		}
		sigC := varSig(c.lits)
		for _, pass := range [2]Lit{min, min.Neg()} {
			for _, dj := range occ[pass] {
				d := cand[dj]
				if d == c || d.dead || len(d.lits) < len(c.lits) {
					continue
				}
				if sigC&^sigs[dj] != 0 {
					continue
				}
				neg, ok := s.matchSubsume(c, d)
				if !ok {
					continue
				}
				if neg == -1 {
					// C ⊆ D: D is redundant. A learnt subsuming a
					// problem clause is promoted first — reduceDB must
					// not later delete the only clause carrying the
					// constraint.
					if c.learnt && !d.learnt {
						c.learnt = false
					}
					s.delClause(d)
					s.Stats.SubsumedClauses++
					continue
				}
				// Self-subsuming resolution: drop ¬(C∋l) from D.
				if !s.strengthenClause(d, neg) {
					return false
				}
				s.Stats.StrengthenedClauses++
				if !d.dead {
					sigs[dj] = varSig(d.lits)
				}
				if c.dead {
					break
				}
			}
			if c.dead {
				break
			}
		}
	}
	return true
}

// rootSatisfied reports whether some literal is true at level 0.
func (s *Solver) rootSatisfied(c *clause) bool {
	for _, l := range c.lits {
		if s.value(l) == LTrue && s.level[l.Var()] == 0 {
			return true
		}
	}
	return false
}

// matchSubsume tests C against D: ok with neg == -1 means C ⊆ D, ok
// with neg >= 0 means C ⊆ D up to exactly one literal whose negation
// appears in D (neg is that negation, the literal to remove from D).
// Root-satisfied D is skipped by the caller; root-false literals in
// either clause participate as ordinary literals.
func (s *Solver) matchSubsume(c, d *clause) (neg Lit, ok bool) {
	if s.rootSatisfied(d) {
		return -1, false
	}
	s.litStamp++
	for _, l := range d.lits {
		s.litMark[l] = s.litStamp
	}
	neg = -1
	for _, l := range c.lits {
		switch {
		case s.litMark[l] == s.litStamp:
		case s.litMark[l.Neg()] == s.litStamp && neg == -1:
			neg = l.Neg()
		default:
			return -1, false
		}
	}
	return neg, true
}

// strengthenClause removes rem from the clause by self-subsuming
// resolution, also dropping any root-false literals so the re-attached
// watches stay valid. If a root-true literal is present the clause is
// satisfied forever and simply deleted. Returns false on top-level
// unsatisfiability.
func (s *Solver) strengthenClause(c *clause, rem Lit) bool {
	newLits := make([]Lit, 0, len(c.lits)-1)
	for _, l := range c.lits {
		if l == rem {
			continue
		}
		if s.value(l) != LUndef && s.level[l.Var()] == 0 {
			if s.value(l) == LTrue {
				s.delClause(c)
				return true
			}
			continue // root-false: drop
		}
		newLits = append(newLits, l)
	}
	if len(newLits) == 0 {
		s.ok = false
		s.logEmptyClause()
		c.dead = true
		return false
	}
	s.logProof(ProofLearn, newLits)
	return s.replaceClause(c, newLits)
}

// elimRecord remembers one eliminated variable and the deleted clauses
// containing its positive literal, for model extension.
type elimRecord struct {
	v   Var
	pos [][]Lit // clauses that contained MkLit(v, true), as deleted
}

// eliminateRound resolves away marked variables whose elimination does
// not grow the database. Resolvents are computed over problem clauses
// only; learnt clauses mentioning the variable are consequences and
// are simply deleted.
func (s *Solver) eliminateRound() bool {
	pending := false
	for v := range s.eliminable {
		if s.eliminable[v] && !s.elimed[v] && s.assigns[v] == LUndef {
			pending = true
			break
		}
	}
	if !pending {
		return true
	}
	maxOcc := s.Inprocess.MaxOccurrences
	if maxOcc == 0 {
		maxOcc = defaultInprocMaxOcc
	}
	maxLen := s.Inprocess.MaxResolventLen
	if maxLen == 0 {
		maxLen = defaultInprocMaxResLen
	}

	// Occurrence lists over live clauses, by literal, problem and
	// learnt kept apart. Updated incrementally as resolvents land so
	// chained auxiliaries (ladder variables) eliminate in one round.
	// Routed by the learnt flag, not the containing slice: a learnt
	// promoted to problem status earlier in this round still sits in
	// s.learnts until compactDB, and must count as irredundant here —
	// deleting it as "just a learnt" would lose the constraint it now
	// solely carries.
	occP := make([][]*clause, len(s.watches))
	occL := make([][]*clause, len(s.watches))
	index := func(cs []*clause) {
		for _, c := range cs {
			if c.dead {
				continue
			}
			occ := occP
			if c.learnt {
				occ = occL
			}
			for _, l := range c.lits {
				occ[l] = append(occ[l], c)
			}
		}
	}
	index(s.clauses)
	index(s.learnts)
	live := func(in []*clause) []*clause {
		out := in[:0:0]
		for _, c := range in {
			if !c.dead {
				out = append(out, c)
			}
		}
		return out
	}

	for vi := range s.eliminable {
		v := Var(vi)
		if !s.eliminable[v] || s.elimed[v] || s.assigns[v] != LUndef {
			continue
		}
		p, n := MkLit(v, true), MkLit(v, false)
		pos, negC := live(occP[p]), live(occP[n])
		if len(pos) > maxOcc || len(negC) > maxOcc {
			continue
		}
		// Trial resolution: count and collect non-trivial resolvents.
		resolvents, ok := s.trialResolve(pos, negC, v, maxLen, len(pos)+len(negC))
		if !ok {
			continue
		}
		// Commit: log and attach every resolvent while the parents are
		// still live (the RUP check needs them), then delete the
		// parents and the learnts mentioning v.
		for _, r := range resolvents {
			nc, alive := s.addDerived(r)
			if !s.ok {
				return false
			}
			if alive {
				for _, l := range nc.lits {
					occP[l] = append(occP[l], nc)
				}
			}
		}
		rec := elimRecord{v: v}
		for _, c := range pos {
			rec.pos = append(rec.pos, append([]Lit(nil), c.lits...))
		}
		for _, c := range pos {
			s.delClause(c)
		}
		for _, c := range negC {
			s.delClause(c)
		}
		for _, c := range live(occL[p]) {
			s.delClause(c)
		}
		for _, c := range live(occL[n]) {
			s.delClause(c)
		}
		s.elimStack = append(s.elimStack, rec)
		s.elimed[v] = true
		s.Stats.ElimVars++
	}
	return true
}

// trialResolve builds the resolvent set of pos × neg on v, dropping
// tautologies and root-satisfied resolvents and deduplicating
// literals. It reports failure when elimination would grow the
// database past maxCount or produce a resolvent longer than maxLen.
func (s *Solver) trialResolve(pos, neg []*clause, v Var, maxLen, maxCount int) ([][]Lit, bool) {
	var out [][]Lit
	for _, pc := range pos {
		for _, nc := range neg {
			r, keep := s.resolve(pc.lits, nc.lits, v)
			if !keep {
				continue
			}
			if len(r) > maxLen {
				return nil, false
			}
			out = append(out, r)
			if len(out) > maxCount {
				return nil, false
			}
		}
	}
	return out, true
}

// resolve computes the resolvent of a and b on pivot v, filtering
// root-assigned literals. keep is false for tautological or
// root-satisfied resolvents (they carry no constraint).
func (s *Solver) resolve(a, b []Lit, v Var) (lits []Lit, keep bool) {
	s.litStamp++
	for _, src := range [2][]Lit{a, b} {
		for _, l := range src {
			if l.Var() == v {
				continue
			}
			if s.value(l) != LUndef && s.level[l.Var()] == 0 {
				if s.value(l) == LTrue {
					return nil, false // satisfied at root forever
				}
				continue // root-false: drop
			}
			if s.litMark[l] == s.litStamp {
				continue // duplicate
			}
			if s.litMark[l.Neg()] == s.litStamp {
				return nil, false // tautology
			}
			s.litMark[l] = s.litStamp
			lits = append(lits, l)
		}
	}
	return lits, true
}

// addDerived logs a derived clause and installs it as a problem clause
// (BVE resolvents are irredundant: the originals are about to be
// deleted). Returns the attached clause (nil for units and empties)
// and whether a clause object was attached. Sets s.ok = false on
// top-level unsatisfiability.
func (s *Solver) addDerived(lits []Lit) (*clause, bool) {
	s.logProof(ProofLearn, lits)
	switch len(lits) {
	case 0:
		s.ok = false
		s.emptyLogged = true // the Learn above was the empty clause
		return nil, false
	case 1:
		if !s.enqueueDerivedUnit(lits[0]) {
			return nil, false
		}
		return nil, false
	}
	c := &clause{lits: lits}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return c, true
}

// extendModel assigns eliminated variables in the freshly copied model:
// in reverse elimination order, each variable defaults to false and
// flips to true only if one of its deleted positive-literal clauses
// would otherwise be unsatisfied. (Standard BVE reconstruction: if the
// default leaves some positive clause A∨v unsatisfied, every negative
// clause B∨¬v had its resolvent A∨B satisfied with A false, so B is
// true and v := true satisfies both sides.)
func (s *Solver) extendModel() {
	if len(s.elimStack) == 0 {
		return
	}
	mval := func(l Lit) bool {
		v := s.model[l.Var()]
		if l.IsPos() {
			return v == LTrue
		}
		return v != LTrue // LUndef counts as false
	}
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		rec := &s.elimStack[i]
		s.model[rec.v] = LFalse
		for _, cl := range rec.pos {
			sat := false
			for _, l := range cl {
				if l.Var() != rec.v && mval(l) {
					sat = true
					break
				}
			}
			if !sat {
				s.model[rec.v] = LTrue
				break
			}
		}
	}
}
