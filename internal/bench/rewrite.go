package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/synth"
)

// RewriteTable measures the memoized one-shot normalizer across the
// seed scenarios and the netgen presets: how much each deployment's
// seeds shrink, how many propagation rounds the deepest conjunction
// needed (the old engine re-traversed the whole term once per round;
// the normalizer localizes the loop to the conjunction that needs it),
// how many distinct subterm normal forms the session cache holds, and
// what fraction of subterm lookups it answered. A high hit rate means
// sibling routers are reusing one another's normalization work.
func RewriteTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "rewrite (normalizer + NF cache)",
		Caption: "Single-pass normalizer over every configured router (lift off). seed/simpl atoms are summed across routers; max-passes is 1 + the deepest conjunction's propagation rounds; rule-fires counts per distinct subterm; nf-entries and nf-hit% describe the session's shared normal-form cache after the whole run.",
		Columns: []string{"workload", "routers", "seed-atoms", "simpl-atoms", "max-passes", "rule-fires", "nf-entries", "nf-hit%", "explain-ms"},
	}

	type job struct {
		name  string
		build func() (*core.Explainer, error)
	}
	var jobs []job
	for _, sc := range scenarios.All() {
		sc := sc
		jobs = append(jobs, job{name: sc.Name, build: func() (*core.Explainer, error) {
			res, err := synthesizeScenario(ctx, sc)
			if err != nil {
				return nil, err
			}
			opts := core.DefaultOptions()
			opts.Lift = false
			return core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
		}})
	}
	for _, wl := range satWorkloads() {
		wl := wl
		jobs = append(jobs, job{name: wl.Name, build: func() (*core.Explainer, error) {
			sopts := synth.DefaultOptions()
			sopts.MaxPathLen = 7
			sopts.MaxCandidatesPerNode = 8
			res, err := synth.SynthesizeContext(ctx, wl.Net, wl.Sketch, wl.Requirements(), sopts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", wl.Name, err)
			}
			opts := core.DefaultOptions()
			opts.Lift = false
			opts.Synth = sopts
			return core.NewExplainer(wl.Net, wl.Requirements(), res.Deployment, opts)
		}})
	}

	for _, j := range jobs {
		ex, err := j.build()
		if err != nil {
			return nil, err
		}
		routers := make([]string, 0, len(ex.Deployment))
		for r := range ex.Deployment {
			routers = append(routers, r)
		}
		sort.Strings(routers)

		seedAtoms, simplAtoms, maxPasses, fires := 0, 0, 0, 0
		start := time.Now()
		for _, r := range routers {
			e, err := ex.ExplainAllContext(ctx, r)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", j.name, r, err)
			}
			seedAtoms += e.SeedSize
			simplAtoms += e.SimplifiedSize
			if e.Passes > maxPasses {
				maxPasses = e.Passes
			}
			for _, n := range e.RuleStats {
				fires += n
			}
		}
		explainMS := float64(time.Since(start).Microseconds()) / 1000
		st := ex.Stats()
		hitRate := 0.0
		if lookups := st.NormCacheHits + st.NormCacheMisses; lookups > 0 {
			hitRate = 100 * float64(st.NormCacheHits) / float64(lookups)
		}
		t.AddRow(j.name, len(routers), seedAtoms, simplAtoms, maxPasses, fires,
			st.NormCacheEntries, fmt.Sprintf("%.1f", hitRate),
			fmt.Sprintf("%.1f", explainMS))
	}
	return t, nil
}
