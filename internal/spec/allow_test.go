package spec

import (
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	b, err := ParseBlock(`
Req4 {
    +(P1->...->C)
    !(P1->...->P2)
}`)
	if err != nil {
		t.Fatal(err)
	}
	allows := b.Allows()
	if len(allows) != 1 {
		t.Fatalf("allows = %d, want 1", len(allows))
	}
	if allows[0].Path.String() != "P1->...->C" {
		t.Fatalf("allow path = %s", allows[0].Path)
	}
	if len(b.Forbids()) != 1 {
		t.Fatal("forbid alongside allow lost")
	}
	if !allows[0].Mentions("P1") || allows[0].Mentions("R9") {
		t.Fatal("Allow.Mentions broken")
	}
	if allows[0].String() != "+(P1->...->C)" {
		t.Fatalf("Allow.String = %q", allows[0].String())
	}
}

func TestAllowPrintRoundTrip(t *testing.T) {
	src := `
Req {
    (A->B) >> (A->C->B)
    +(A->...->B)
    !(B->...->A)
}`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(s)
	for _, want := range []string{"+(A->...->B)", "!(B->...->A)", ">>"} {
		if !strings.Contains(printed, want) {
			t.Fatalf("print misses %q:\n%s", want, printed)
		}
	}
	s2, err := Parse(printed)
	if err != nil {
		t.Fatal(err)
	}
	if Print(s2) != printed {
		t.Fatal("allow round trip unstable")
	}
	if len(s2.Requirements()) != 3 {
		t.Fatalf("requirements = %d, want 3", len(s2.Requirements()))
	}
}

func TestSpecNodesIncludesAllow(t *testing.T) {
	s, err := Parse(`Req { +(X->...->Y) }`)
	if err != nil {
		t.Fatal(err)
	}
	nodes := s.Nodes()
	if len(nodes) != 2 || nodes[0] != "X" || nodes[1] != "Y" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestAllowParseErrors(t *testing.T) {
	for _, src := range []string{
		"Req { +(A) }",
		"Req { + }",
		"Req { +(A->B }",
		"Req { preference { +(A->B) } }",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
