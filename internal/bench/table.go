// Package bench implements the experiment harness: every figure and
// quantitative claim of the paper's evaluation (and the scaling /
// ablation extensions documented in DESIGN.md) is regenerated as a
// table. cmd/netbench prints them; the repository-root benchmarks
// exercise the same code paths under testing.B.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's result, rendered as an aligned text table.
type Table struct {
	// ID names the experiment (matching the index in DESIGN.md).
	ID string
	// Caption describes what the paper reports and what to look for.
	Caption string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified by fmt.Sprint).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// JSON marshals the table (for -format json in cmd/netbench).
func (t *Table) JSON() map[string]any {
	rows := make([]map[string]string, len(t.Rows))
	for i, row := range t.Rows {
		m := make(map[string]string, len(row))
		for j, cell := range row {
			if j < len(t.Columns) {
				m[t.Columns[j]] = cell
			}
		}
		rows[i] = m
	}
	return map[string]any{"id": t.ID, "caption": t.Caption, "rows": rows}
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n%s\n\n", t.ID, t.Caption)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
