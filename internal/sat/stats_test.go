package sat

import "testing"

// TestStatsSubSaturates pins the harvest-delta arithmetic: a counter
// that fell behind its checkpoint (the solver behind the checkpoint
// was swapped for a fresh clone) must clamp to zero, not wrap to a
// huge unsigned value that would poison every downstream total.
func TestStatsSubSaturates(t *testing.T) {
	a := Stats{Solves: 7, Conflicts: 2, Propagations: 100, Decisions: 5, Learnt: 1, MaxVars: 40, Clauses: 60}
	b := Stats{Solves: 3, Conflicts: 9, Propagations: 40, Decisions: 5, Learnt: 4, MaxVars: 10, Clauses: 20}
	d := a.Sub(b)
	if d.Solves != 4 || d.Propagations != 60 || d.Decisions != 0 {
		t.Fatalf("plain delta wrong: %+v", d)
	}
	if d.Conflicts != 0 || d.Learnt != 0 {
		t.Fatalf("regressed counters must saturate at zero, got %+v", d)
	}
	if d.MaxVars != 40 || d.Clauses != 60 {
		t.Fatalf("structural gauges must come from the later snapshot, got %+v", d)
	}
}

// TestCloneStatsStartZeroed pins the merging contract Clone documents:
// a clone's work counters start at zero (so they merge additively into
// session totals) while the structural gauges carry over.
func TestCloneStatsStartZeroed(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	if st := s.Solve(); st != Sat {
		t.Fatalf("setup solve: %v", st)
	}
	c := s.Clone()
	if c.Stats.Solves != 0 || c.Stats.Conflicts != 0 || c.Stats.Propagations != 0 {
		t.Fatalf("clone work counters not zeroed: %+v", c.Stats)
	}
	if c.Stats.MaxVars != s.Stats.MaxVars || c.Stats.Clauses != s.Stats.Clauses {
		t.Fatalf("clone gauges diverge: %+v vs %+v", c.Stats, s.Stats)
	}
}
