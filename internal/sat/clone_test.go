package sat

import (
	"math/rand"
	"testing"
)

// randomCNF adds a random 3-CNF over the solver's n variables.
func clone3CNF(rng *rand.Rand, s *Solver, vars []Var, clauses int) [][]Lit {
	var out [][]Lit
	for i := 0; i < clauses; i++ {
		lits := make([]Lit, 3)
		for j := range lits {
			lits[j] = MkLit(vars[rng.Intn(len(vars))], rng.Intn(2) == 0)
		}
		out = append(out, lits)
		s.AddClause(lits...)
	}
	return out
}

// TestCloneSameVerdicts checks the central Clone invariant: on random
// formulas, the clone and the original reach the same verdict for the
// same assumption probes — including after the original has solved
// (and therefore learnt) before cloning, so the carried-over learnt
// clauses must not change any answer.
func TestCloneSameVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		s := NewSolver()
		vars := newVars(s, 12)
		formula := clone3CNF(rng, s, vars, 30+rng.Intn(30))

		// Warm the original: a few solves under random assumptions make
		// it accumulate learnts, phases, and activity.
		for i := 0; i < 3; i++ {
			s.Solve(MkLit(vars[rng.Intn(len(vars))], rng.Intn(2) == 0))
		}

		c := s.Clone()
		// A cold solver over the same formula (no learnts, no saved
		// state) is the ground-truth oracle.
		fresh := NewSolver()
		fvars := newVars(fresh, 12)
		for _, cl := range formula {
			fresh.AddClause(cl...)
		}

		for probe := 0; probe < 8; probe++ {
			var as, fas []Lit
			for k := 0; k < 1+rng.Intn(3); k++ {
				v := rng.Intn(len(vars))
				pos := rng.Intn(2) == 0
				as = append(as, MkLit(vars[v], pos))
				fas = append(fas, MkLit(fvars[v], pos))
			}
			want := fresh.Solve(fas...)
			if got := c.Solve(as...); got != want {
				t.Fatalf("round %d probe %d: clone = %v, fresh = %v (assumptions %v)", round, probe, got, want, as)
			}
			if got := s.Solve(as...); got != want {
				t.Fatalf("round %d probe %d: original = %v, fresh = %v", round, probe, got, want)
			}
		}
	}
}

// TestCloneIndependent checks that clauses added to the clone after
// cloning do not leak into the original and vice versa.
func TestCloneIndependent(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))

	c := s.Clone()
	// Constrain the clone into a corner; the original must not notice.
	c.AddClause(NegLit(v[0]))
	c.AddClause(NegLit(v[1]))
	if got := c.Solve(); got != Unsat {
		t.Fatalf("clone = %v, want Unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("original after clone constrained = %v, want Sat", got)
	}
	// And the other direction.
	s.AddClause(NegLit(v[2]))
	c2 := s.Clone()
	s.AddClause(PosLit(v[2]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("original = %v, want Unsat", got)
	}
	if got := c2.Solve(PosLit(v[0])); got != Sat {
		t.Fatalf("second clone = %v, want Sat", got)
	}
}

// TestCloneCarriesLearnts checks that a clone of a solver that has
// learnt clauses actually holds copies of them (the warm start the
// lift worker pool relies on), with fresh counters.
func TestCloneCarriesLearnts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSolver()
	vars := newVars(s, 20)
	clone3CNF(rng, s, vars, 90)
	for i := 0; i < 5; i++ {
		s.Solve(MkLit(vars[rng.Intn(len(vars))], rng.Intn(2) == 0))
	}
	if len(s.learnts) == 0 {
		t.Skip("formula produced no learnt clauses; widen the CNF")
	}
	c := s.Clone()
	if len(c.learnts) != len(s.learnts) {
		t.Fatalf("clone learnts = %d, original = %d", len(c.learnts), len(s.learnts))
	}
	for i := range c.learnts {
		if c.learnts[i] == s.learnts[i] {
			t.Fatal("clone shares a learnt clause pointer with the original")
		}
	}
	if c.Stats.Conflicts != 0 || c.Stats.Solves != 0 {
		t.Fatalf("clone work counters not zeroed: %+v", c.Stats)
	}
	if c.Stats.MaxVars != s.Stats.MaxVars || c.Stats.Clauses != s.Stats.Clauses {
		t.Fatalf("clone gauges not carried over: %+v vs %+v", c.Stats, s.Stats)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Solves: 10, Decisions: 20, Propagations: 30, Conflicts: 5, Restarts: 2, Learnt: 4, MaxVars: 9, Clauses: 13}
	b := Stats{Solves: 4, Decisions: 8, Propagations: 12, Conflicts: 2, Restarts: 1, Learnt: 1, MaxVars: 7, Clauses: 11}
	d := a.Sub(b)
	want := Stats{Solves: 6, Decisions: 12, Propagations: 18, Conflicts: 3, Restarts: 1, Learnt: 3, MaxVars: 9, Clauses: 13}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
}
