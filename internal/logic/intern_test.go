package logic

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// The hash-consing invariant: within one interner, structural equality
// and pointer identity coincide. The constructors intern through the
// package-default table, so any two terms built independently but with
// the same structure must be the same node.

func TestInternConstructorsPointerIdentity(t *testing.T) {
	build := func() Term {
		p, q := NewBoolVar("p"), NewBoolVar("q")
		m := NewIntVar("m", -8, 8)
		return And(Or(p, Not(q)), Implies(Lt(m, NewInt(3)), p), Iff(q, False))
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("structurally equal constructor-built terms are distinct pointers:\n%v", a)
	}
	if !Equal(a, b) {
		t.Fatalf("pointer-identical terms not Equal: %v", a)
	}
	// Leaves too.
	if NewInt(7) != NewInt(7) {
		t.Error("NewInt(7) not canonicalized")
	}
	if NewBoolVar("p") != NewBoolVar("p") {
		t.Error("NewBoolVar(\"p\") not canonicalized")
	}
	if NewBool(true) != True || NewBool(false) != False {
		t.Error("boolean literals not the True/False singletons")
	}
}

func TestInternParsePrintRoundTrip(t *testing.T) {
	sort := NewEnumSort("IC", "lo", "hi")
	vars := []*Var{NewBoolVar("p"), NewBoolVar("q"), NewIntVar("n", 0, 15), NewEnumVar("mode", sort)}
	p, err := NewParser(vars, []*Sort{sort})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"p & (q | !p)",
		"n < 7 => mode = hi",
		"ite(p, n, n + 1) = 3 & (mode = lo <=> q)",
	} {
		t1, err := p.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		t2, err := p.Parse(t1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", t1, err)
		}
		// Printing and reparsing must come back to the same canonical
		// node, not merely an equal one.
		if t1 != t2 {
			t.Errorf("parse->print->parse of %q lost canonicity:\n  %v\n  %v", src, t1, t2)
		}
	}
}

// TestInternAgreesWithEqualHash checks on random terms that the
// constructors' interning agrees with the structural predicates: terms
// are Equal iff pointer-identical, and Equal terms share their hash.
// The cached hash must also agree with a from-scratch recomputation.
func TestInternAgreesWithEqualHash(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		a := randBoolTerm(r, 4)
		b := randBoolTerm(r, 4)
		if Equal(a, b) != (a == b) {
			t.Logf("Equal/pointer disagreement:\n  %v\n  %v", a, b)
			return false
		}
		if Equal(a, b) && Hash(a) != Hash(b) {
			t.Logf("Equal terms with different hashes: %v", a)
			return false
		}
		if Hash(a) != computeHash(a) {
			t.Logf("cached hash differs from recomputation: %v", a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestInternConcurrent interns the same structures from many goroutines
// into one fresh table and checks they all receive the same canonical
// pointer. Run under -race this also exercises the claim-on-insert
// publication of the cached hash and owner fields.
func TestInternConcurrent(t *testing.T) {
	in := NewInterner()
	const goroutines = 8
	const formulas = 40

	// Raw, un-interned builders (struct literals bypass the default
	// table) so every goroutine genuinely probes the shared interner.
	build := func(i int) Term {
		v := &Var{Name: fmt.Sprintf("v%d", i%5), S: Bool}
		w := &Var{Name: "w", S: Bool}
		n := &Var{Name: "n", S: Int, Lo: 0, Hi: int64(4 + i%3)}
		lit := &IntLit{Val: int64(i % 4)}
		return &Apply{Op: OpAnd, Args: []Term{
			&Apply{Op: OpOr, Args: []Term{v, &Apply{Op: OpNot, Args: []Term{w}}}},
			&Apply{Op: OpEq, Args: []Term{n, lit}},
		}}
	}

	got := make([][]Term, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Term, formulas)
			for i := 0; i < formulas; i++ {
				out[i] = in.Intern(build(i))
			}
			got[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < formulas; i++ {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d got a different canonical node for formula %d", g, i)
			}
		}
	}
	// Re-interning a canonical node is the identity.
	for i := 0; i < formulas; i++ {
		if in.Intern(got[0][i]) != got[0][i] {
			t.Fatalf("re-interning canonical node %d is not the identity", i)
		}
	}
}

// TestInternerIsolation checks that separate interners maintain
// separate universes: equal structure, distinct canonical nodes.
func TestInternerIsolation(t *testing.T) {
	raw := func() Term {
		v := &Var{Name: "iso_x", S: Bool}
		return &Apply{Op: OpOr, Args: []Term{v, &Apply{Op: OpNot, Args: []Term{v}}}}
	}
	in1, in2 := NewInterner(), NewInterner()
	c1 := in1.Intern(raw())
	c2 := in2.Intern(raw())
	if c1 == c2 {
		t.Fatal("separate interners share a canonical node")
	}
	if !Equal(c1, c2) {
		t.Fatal("canonical nodes of equal structure are not Equal across interners")
	}
	if Hash(c1) != Hash(c2) {
		t.Fatal("hash differs across interners for equal structure")
	}
	// Adopting a foreign canonical node re-canonicalizes without
	// mutating the original.
	c12 := in2.Intern(c1)
	if c12 != c2 {
		t.Fatal("foreign node did not canonicalize to the target interner's node")
	}
	if in1.Intern(c1) != c1 {
		t.Fatal("original node lost canonicity in its own interner")
	}
	// The True/False singletons are shared by every interner.
	if in1.Intern(&BoolLit{Val: true}) != True || in2.Intern(&BoolLit{Val: true}) != True {
		t.Fatal("BoolLit did not canonicalize to the True singleton")
	}
}

// sharedLadder builds a formula ladder with heavy structural sharing:
// f_i = (f_{i-1} & a_i) | (f_{i-1} & b_i).
func sharedLadder(depth int) Term {
	f := Term(NewBoolVar("base"))
	for i := 0; i < depth; i++ {
		a := NewBoolVar(fmt.Sprintf("a%d", i))
		b := NewBoolVar(fmt.Sprintf("b%d", i))
		f = Or(And(f, a), And(f, b))
	}
	return f
}

// BenchmarkInternLadder measures constructing the ladder through the
// interning constructors — every node is a table probe.
func BenchmarkInternLadder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sharedLadder(12)
	}
}

// BenchmarkInternHit measures re-interning an already canonical term —
// the O(1) ownership fast path the hot paths rely on.
func BenchmarkInternHit(b *testing.B) {
	t := sharedLadder(12)
	in := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in.Intern(t) != t {
			b.Fatal("canonical term moved")
		}
	}
}

// BenchmarkEqualInterned measures Equal on large pointer-identical
// terms (the fast path) against a structurally equal term from a
// different interner (one pointer/hash discrimination, no deep walk on
// mismatch).
func BenchmarkEqualInterned(b *testing.B) {
	t1 := sharedLadder(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(t1, t1) {
			b.Fatal("not equal")
		}
	}
}
