// Package logic implements a small typed term language — an "SMT-lite"
// abstract syntax — used throughout the repository to express network
// synthesis constraints, seed specifications, and simplified
// subspecification constraints.
//
// The language has three sorts: booleans, (bounded) integers, and named
// enumerations. It deliberately mirrors the fragment of SMT that
// constraint-based network synthesizers such as NetComplete emit: all
// variables range over finite domains (route-map actions, community
// tags, local preferences, prefix identifiers), so every formula in this
// package is decidable by the finite-domain solver in internal/smt.
//
// Terms are immutable; all operations (substitution, evaluation,
// simplification in internal/rewrite) build new terms.
package logic

import (
	"fmt"
	"strings"
)

// SortKind discriminates the three families of sorts.
type SortKind int

const (
	// KindBool is the sort of truth values.
	KindBool SortKind = iota
	// KindInt is the sort of integers. Variables of this sort carry an
	// inclusive [Lo, Hi] domain so the SMT layer can bit-blast them.
	KindInt
	// KindEnum is a named, finite enumeration of symbolic constants
	// (for example route-map actions {permit, deny} or attribute names).
	KindEnum
)

// Sort describes the type of a term. Sorts are compared by identity for
// enums (each named enumeration is created once) and by kind for Bool
// and Int. The zero value is not a valid sort; use the package-level
// constructors.
type Sort struct {
	Kind SortKind
	// Name is the enumeration name for KindEnum sorts ("" otherwise).
	Name string
	// Values lists the enumeration constants for KindEnum sorts, in
	// declaration order. The order fixes the integer encoding used by
	// the SMT layer.
	Values []string

	index map[string]int
}

// Bool is the shared boolean sort.
var Bool = &Sort{Kind: KindBool}

// Int is the shared integer sort. Domains are attached to variables,
// not to the sort, because different variables of the same sort have
// different ranges (for example local-pref in [0,200] versus a MED in
// [0,4095]).
var Int = &Sort{Kind: KindInt}

// NewEnumSort creates a named enumeration sort with the given
// constants. It panics if name is empty, values is empty, or values
// contains duplicates: enumeration sorts define an encoding and must be
// well-formed at construction time.
func NewEnumSort(name string, values ...string) *Sort {
	if name == "" {
		panic("logic: enum sort must have a name")
	}
	if len(values) == 0 {
		panic(fmt.Sprintf("logic: enum sort %q must have at least one value", name))
	}
	idx := make(map[string]int, len(values))
	for i, v := range values {
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("logic: enum sort %q has duplicate value %q", name, v))
		}
		idx[v] = i
	}
	vals := make([]string, len(values))
	copy(vals, values)
	return &Sort{Kind: KindEnum, Name: name, Values: vals, index: idx}
}

// ValueIndex reports the position of value v in the enumeration, and
// whether v is a member. It returns (-1, false) for non-enum sorts.
func (s *Sort) ValueIndex(v string) (int, bool) {
	if s.Kind != KindEnum {
		return -1, false
	}
	i, ok := s.index[v]
	if !ok {
		return -1, false
	}
	return i, true
}

// IsBool reports whether s is the boolean sort.
func (s *Sort) IsBool() bool { return s != nil && s.Kind == KindBool }

// IsInt reports whether s is the integer sort.
func (s *Sort) IsInt() bool { return s != nil && s.Kind == KindInt }

// IsEnum reports whether s is an enumeration sort.
func (s *Sort) IsEnum() bool { return s != nil && s.Kind == KindEnum }

// SameSort reports whether two sorts are interchangeable: both Bool,
// both Int, or the same named enumeration with identical value lists.
func SameSort(a, b *Sort) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindBool, KindInt:
		return true
	case KindEnum:
		if a.Name != b.Name || len(a.Values) != len(b.Values) {
			return false
		}
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the sort for diagnostics.
func (s *Sort) String() string {
	if s == nil {
		return "<nil-sort>"
	}
	switch s.Kind {
	case KindBool:
		return "Bool"
	case KindInt:
		return "Int"
	case KindEnum:
		return fmt.Sprintf("Enum(%s:{%s})", s.Name, strings.Join(s.Values, ","))
	}
	return fmt.Sprintf("Sort(kind=%d)", int(s.Kind))
}
