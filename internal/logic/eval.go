package logic

import "fmt"

// Value is a concrete value of one of the three sorts. Exactly one of
// the payload fields is meaningful, selected by Sort.Kind.
type Value struct {
	S *Sort
	B bool
	I int64
	E string
}

// BoolValue wraps a boolean.
func BoolValue(b bool) Value { return Value{S: Bool, B: b} }

// IntValue wraps an integer.
func IntValue(i int64) Value { return Value{S: Int, I: i} }

// EnumValue wraps an enumeration constant; it panics if val is not a
// member of s.
func EnumValue(s *Sort, val string) Value {
	if _, ok := s.ValueIndex(val); !ok {
		panic(fmt.Sprintf("logic: %q is not a value of sort %v", val, s))
	}
	return Value{S: s, E: val}
}

// String renders the value.
func (v Value) String() string {
	switch {
	case v.S.IsBool():
		if v.B {
			return "true"
		}
		return "false"
	case v.S.IsInt():
		return fmt.Sprintf("%d", v.I)
	default:
		return v.E
	}
}

// Equal reports whether two values are identical (same sort family and
// payload).
func (v Value) Equal(w Value) bool {
	if !SameSort(v.S, w.S) {
		return false
	}
	switch v.S.Kind {
	case KindBool:
		return v.B == w.B
	case KindInt:
		return v.I == w.I
	case KindEnum:
		return v.E == w.E
	}
	return false
}

// Term converts the value back into a literal term.
func (v Value) Term() Term {
	switch v.S.Kind {
	case KindBool:
		return NewBool(v.B)
	case KindInt:
		return NewInt(v.I)
	case KindEnum:
		return NewEnum(v.S, v.E)
	}
	panic("logic: Value with unknown sort kind")
}

// Assignment maps variable names to concrete values. Evaluation treats
// missing variables as an error, surfaced through Eval's error return.
type Assignment map[string]Value

// Eval evaluates t under the assignment. It returns an error if a free
// variable of t is unassigned or assigned a value of the wrong sort.
// The logic is total otherwise: all operators are defined on all values
// of their argument sorts.
func Eval(t Term, a Assignment) (Value, error) {
	switch n := t.(type) {
	case *Var:
		v, ok := a[n.Name]
		if !ok {
			return Value{}, fmt.Errorf("logic: variable %q is unassigned", n.Name)
		}
		if !SameSort(v.S, n.S) {
			return Value{}, fmt.Errorf("logic: variable %q has sort %v but is assigned %v", n.Name, n.S, v.S)
		}
		return v, nil
	case *BoolLit:
		return BoolValue(n.Val), nil
	case *IntLit:
		return IntValue(n.Val), nil
	case *EnumLit:
		return Value{S: n.S, E: n.Val}, nil
	case *Apply:
		return evalApply(n, a)
	}
	return Value{}, fmt.Errorf("logic: cannot evaluate term of type %T", t)
}

func evalApply(n *Apply, a Assignment) (Value, error) {
	switch n.Op {
	case OpAnd:
		for _, arg := range n.Args {
			v, err := Eval(arg, a)
			if err != nil {
				return Value{}, err
			}
			if !v.B {
				return BoolValue(false), nil
			}
		}
		return BoolValue(true), nil
	case OpOr:
		for _, arg := range n.Args {
			v, err := Eval(arg, a)
			if err != nil {
				return Value{}, err
			}
			if v.B {
				return BoolValue(true), nil
			}
		}
		return BoolValue(false), nil
	case OpNot:
		v, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(!v.B), nil
	case OpImplies:
		l, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		if !l.B {
			return BoolValue(true), nil
		}
		return Eval(n.Args[1], a)
	case OpIff:
		l, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		r, err := Eval(n.Args[1], a)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(l.B == r.B), nil
	case OpEq, OpNe:
		l, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		r, err := Eval(n.Args[1], a)
		if err != nil {
			return Value{}, err
		}
		eq := l.Equal(r)
		if n.Op == OpNe {
			eq = !eq
		}
		return BoolValue(eq), nil
	case OpLt, OpLe, OpGt, OpGe:
		l, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		r, err := Eval(n.Args[1], a)
		if err != nil {
			return Value{}, err
		}
		var b bool
		switch n.Op {
		case OpLt:
			b = l.I < r.I
		case OpLe:
			b = l.I <= r.I
		case OpGt:
			b = l.I > r.I
		case OpGe:
			b = l.I >= r.I
		}
		return BoolValue(b), nil
	case OpAdd:
		var sum int64
		for _, arg := range n.Args {
			v, err := Eval(arg, a)
			if err != nil {
				return Value{}, err
			}
			sum += v.I
		}
		return IntValue(sum), nil
	case OpSub:
		l, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		r, err := Eval(n.Args[1], a)
		if err != nil {
			return Value{}, err
		}
		return IntValue(l.I - r.I), nil
	case OpIte:
		c, err := Eval(n.Args[0], a)
		if err != nil {
			return Value{}, err
		}
		if c.B {
			return Eval(n.Args[1], a)
		}
		return Eval(n.Args[2], a)
	}
	return Value{}, fmt.Errorf("logic: cannot evaluate operator %v", n.Op)
}

// EvalBool evaluates a boolean term, returning its truth value.
func EvalBool(t Term, a Assignment) (bool, error) {
	if !t.Sort().IsBool() {
		return false, fmt.Errorf("logic: EvalBool on term of sort %v", t.Sort())
	}
	v, err := Eval(t, a)
	if err != nil {
		return false, err
	}
	return v.B, nil
}
