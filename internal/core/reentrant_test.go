package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/netgen"
	"repro/internal/scenarios"
)

// TestExplainerConcurrentQueries hammers one shared explainer with
// parallel read-style queries (run under -race): every goroutine's
// results must be byte-identical to the single-threaded reference.
func TestExplainerConcurrentQueries(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)

	wantReport, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantEx, err := e.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	wantStats := e.Stats()
	if wantStats.Encodes == 0 {
		t.Fatal("reference run recorded no encodes")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				got, err := e.ReportContext(context.Background())
				if err != nil {
					t.Errorf("goroutine %d: report: %v", g, err)
					return
				}
				if got != wantReport {
					t.Errorf("goroutine %d: report diverged", g)
				}
			case 1:
				got, err := e.ExplainAllContext(context.Background(), "R1")
				if err != nil {
					t.Errorf("goroutine %d: explain: %v", g, err)
					return
				}
				if got.Simplified != wantEx.Simplified {
					t.Errorf("goroutine %d: explanation diverged", g)
				}
			case 2:
				e.Stats() // must not race with the queries
			}
		}(g)
	}
	wg.Wait()
}

// TestExplainerReExplainExcludesQueries interleaves ReExplain (which
// swaps the explainer's problem in place) with concurrent report
// queries. Under -race this pins the exclusion; functionally, every
// query must return one of the two coherent reports — the old
// problem's or the new problem's — never a hybrid.
func TestExplainerReExplainExcludesQueries(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	edited, edits := netgen.Perturb(dep, 1, 1)
	if len(edits) == 0 {
		t.Fatal("no edit sites")
	}

	e := newExplainer(t, sc, dep, nil)
	oldReport, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	newReport, coldErr := coldReport(t, sc, edited, nil, DefaultOptions())
	if coldErr != nil {
		t.Skipf("edited deployment does not explain: %v", coldErr)
	}

	var wg sync.WaitGroup
	reports := make([]string, 6)
	errs := make([]error, 6)
	for g := range reports {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reports[g], errs[g] = e.ReportContext(context.Background())
		}(g)
	}
	dr, err := e.ReExplain(Delta{Deployment: edited})
	if err != nil {
		t.Fatalf("ReExplain: %v (edits: %v)", err, edits)
	}
	if dr.Report != newReport {
		t.Fatal("ReExplain report diverges from cold edited report")
	}
	wg.Wait()
	for g, r := range reports {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if r != oldReport && r != newReport {
			t.Errorf("goroutine %d: hybrid report (neither old nor new problem)", g)
		}
	}

	// After the swap, fresh queries all see the edited problem.
	got, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != newReport {
		t.Fatal("post-ReExplain report is not the edited problem's")
	}
}
